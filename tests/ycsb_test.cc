// Tests for the YCSB substrate: data-set generators (shape properties),
// workload specs, and an end-to-end driver smoke test on every index.

#include "ycsb/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "art/art.h"
#include "btree/btree.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "ycsb/adapters.h"
#include "ycsb/datasets.h"

namespace hot {
namespace ycsb {
namespace {

TEST(DataSets, IntegerUniqueAnd63Bit) {
  DataSet ds = GenerateDataSet(DataSetKind::kInteger, 10000);
  EXPECT_EQ(ds.size(), 10000u);
  std::set<uint64_t> dedup(ds.ints.begin(), ds.ints.end());
  EXPECT_EQ(dedup.size(), ds.ints.size());
  for (uint64_t v : ds.ints) EXPECT_EQ(v >> 63, 0u);
  EXPECT_EQ(ds.AverageKeyBytes(), 8.0);
}

TEST(DataSets, YagoBitLayout) {
  DataSet ds = GenerateDataSet(DataSetKind::kYago, 10000);
  std::set<uint64_t> subjects, predicates;
  for (uint64_t v : ds.ints) {
    EXPECT_EQ(v >> 63, 0u);
    subjects.insert(v >> 37);
    predicates.insert((v >> 26) & ((1ULL << 11) - 1));
  }
  // Zipfian subjects: far fewer distinct subjects than keys, and a small
  // predicate vocabulary.
  EXPECT_LT(subjects.size(), ds.size());
  EXPECT_LE(predicates.size(), 64u);
  EXPECT_GT(predicates.size(), 10u);
}

TEST(DataSets, UrlShape) {
  DataSet ds = GenerateDataSet(DataSetKind::kUrl, 5000);
  EXPECT_EQ(ds.size(), 5000u);
  std::set<std::string> dedup(ds.strings.begin(), ds.strings.end());
  EXPECT_EQ(dedup.size(), ds.strings.size());
  // Average length near the paper's 55 bytes.
  EXPECT_GT(ds.AverageKeyBytes(), 35.0);
  EXPECT_LT(ds.AverageKeyBytes(), 75.0);
  size_t shared_prefix = 0;
  for (const auto& u : ds.strings) {
    EXPECT_TRUE(u.find("http") == 0) << u;
    EXPECT_EQ(u.find('\0'), std::string::npos);
    if (u.find("http://www.") == 0) ++shared_prefix;
  }
  // Long shared prefixes must be common (that is what stresses tries).
  EXPECT_GT(shared_prefix, ds.size() / 4);
}

TEST(DataSets, EmailShape) {
  DataSet ds = GenerateDataSet(DataSetKind::kEmail, 5000);
  EXPECT_GT(ds.AverageKeyBytes(), 14.0);
  EXPECT_LT(ds.AverageKeyBytes(), 32.0);
  size_t digits_only_local = 0;
  for (const auto& e : ds.strings) {
    auto at = e.find('@');
    ASSERT_NE(at, std::string::npos) << e;
    EXPECT_EQ(e.find('\0'), std::string::npos);
    bool all_digits = true;
    for (size_t i = 0; i < at; ++i) all_digits &= isdigit(e[i]) != 0;
    if (all_digits) ++digits_only_local;
  }
  EXPECT_GT(digits_only_local, 0u);  // the paper mentions numeric addresses
}

TEST(DataSets, DeterministicInSeed) {
  DataSet a = GenerateDataSet(DataSetKind::kUrl, 1000, 9);
  DataSet b = GenerateDataSet(DataSetKind::kUrl, 1000, 9);
  DataSet c = GenerateDataSet(DataSetKind::kUrl, 1000, 10);
  EXPECT_EQ(a.strings, b.strings);
  EXPECT_NE(a.strings, c.strings);
}

TEST(Workloads, SpecsMatchYcsbCore) {
  auto a = YcsbWorkload('A', Distribution::kUniform);
  EXPECT_DOUBLE_EQ(a.read, 0.5);
  EXPECT_DOUBLE_EQ(a.update, 0.5);
  auto c = YcsbWorkload('C', Distribution::kZipfian);
  EXPECT_DOUBLE_EQ(c.read, 1.0);
  EXPECT_EQ(c.dist, Distribution::kZipfian);
  auto d = YcsbWorkload('D', Distribution::kUniform);
  EXPECT_EQ(d.dist, Distribution::kLatest);  // D is latest by definition
  auto e = YcsbWorkload('E', Distribution::kUniform);
  EXPECT_DOUBLE_EQ(e.scan, 0.95);
  EXPECT_DOUBLE_EQ(e.insert, 0.05);
  EXPECT_EQ(e.max_scan_len, 100u);
  auto f = YcsbWorkload('F', Distribution::kUniform);
  EXPECT_DOUBLE_EQ(f.rmw, 0.5);
}

TEST(Workloads, AllCoreSpecsValidate) {
  for (char w : {'A', 'B', 'C', 'D', 'E', 'F'}) {
    for (auto d : {Distribution::kUniform, Distribution::kZipfian}) {
      EXPECT_EQ(ValidateWorkloadSpec(YcsbWorkload(w, d)), "")
          << "workload " << w;
    }
  }
}

// Regression: the op-pick chain in RunBenchmark treats insert as the
// residual branch, so a mix summing to less than 1 used to silently run
// extra inserts and one summing to more than 1 silently starved the later
// branches.  Malformed specs must be rejected up front instead.
TEST(Workloads, MalformedSpecsAreRejected) {
  DataSet ds = GenerateDataSet(DataSetKind::kInteger, 2000);
  IntDataSetAdapter<HotTrie> adapter(&ds);

  WorkloadSpec short_sum = YcsbWorkload('A', Distribution::kUniform);
  short_sum.update = 0.1;  // 0.5 + 0.1 = 0.6
  EXPECT_NE(ValidateWorkloadSpec(short_sum), "");
  EXPECT_THROW(RunBenchmark(adapter, ds, 1000, 100, short_sum),
               std::invalid_argument);

  WorkloadSpec over_sum = YcsbWorkload('E', Distribution::kUniform);
  over_sum.read = 0.5;  // 0.5 + 0.95 + 0.05 = 1.5
  EXPECT_NE(ValidateWorkloadSpec(over_sum), "");
  EXPECT_THROW(RunBenchmark(adapter, ds, 1000, 100, over_sum),
               std::invalid_argument);

  WorkloadSpec negative = YcsbWorkload('A', Distribution::kUniform);
  negative.read = -0.5;
  negative.update = 1.5;  // sums to 1.0, probabilities out of range
  EXPECT_NE(ValidateWorkloadSpec(negative), "");
  EXPECT_THROW(RunBenchmark(adapter, ds, 1000, 100, negative),
               std::invalid_argument);

  WorkloadSpec zero_scan_len = YcsbWorkload('E', Distribution::kUniform);
  zero_scan_len.max_scan_len = 0;
  EXPECT_NE(ValidateWorkloadSpec(zero_scan_len), "");
  EXPECT_THROW(RunBenchmark(adapter, ds, 1000, 100, zero_scan_len),
               std::invalid_argument);

  // max_scan_len = 0 is fine when the mix never scans.
  WorkloadSpec no_scans = YcsbWorkload('C', Distribution::kUniform);
  no_scans.max_scan_len = 0;
  EXPECT_EQ(ValidateWorkloadSpec(no_scans), "");
}

template <typename Adapter>
void SmokeRun(const DataSet& ds) {
  Adapter adapter(&ds);
  size_t load_n = ds.size() * 2 / 3;
  for (char w : {'A', 'C', 'D', 'E'}) {
    Adapter fresh(&ds);
    auto spec = YcsbWorkload(w, Distribution::kUniform);
    RunResult r = RunBenchmark(fresh, ds, load_n, 20000, spec);
    EXPECT_EQ(r.load_ops, load_n);
    EXPECT_EQ(r.txn_ops, 20000u);
    EXPECT_EQ(r.failed_ops, 0u) << "workload " << w;
    EXPECT_GT(r.memory_bytes, 0u);
    EXPECT_GT(r.TxnMops(), 0.0);
  }
}

TEST(Driver, AllIndexesAllWorkloadsString) {
  DataSet ds = GenerateDataSet(DataSetKind::kEmail, 30000);
  SmokeRun<StringDataSetAdapter<HotTrie>>(ds);
  SmokeRun<StringDataSetAdapter<ArtTree>>(ds);
  SmokeRun<StringDataSetAdapter<BTree>>(ds);
  SmokeRun<StringDataSetAdapter<Masstree>>(ds);
}

TEST(Driver, AllIndexesAllWorkloadsInteger) {
  DataSet ds = GenerateDataSet(DataSetKind::kInteger, 30000);
  SmokeRun<IntDataSetAdapter<HotTrie>>(ds);
  SmokeRun<IntDataSetAdapter<ArtTree>>(ds);
  SmokeRun<IntDataSetAdapter<BTree>>(ds);
  SmokeRun<IntDataSetAdapter<Masstree>>(ds);
}

// Range-sharded wrappers run the full workload matrix — including E, whose
// scans the hash-sharded wrapper rejects at compile time — through the same
// adapters as the raw indexes.
template <typename Ex>
using RangeShardedHotOf = RangeShardedIndex<HotTrie<Ex>, Ex>;
template <typename Ex>
using RangeShardedBTreeOf = RangeShardedIndex<BTree<Ex>, Ex>;

TEST(Driver, RangeShardedRunsAllWorkloads) {
  DataSet ints = GenerateDataSet(DataSetKind::kInteger, 30000);
  SmokeRun<IntDataSetAdapter<RangeShardedHotOf>>(ints);
  SmokeRun<IntDataSetAdapter<RangeShardedBTreeOf>>(ints);
  DataSet urls = GenerateDataSet(DataSetKind::kUrl, 30000);
  SmokeRun<StringDataSetAdapter<RangeShardedHotOf>>(urls);
}

TEST(Driver, ZipfianRunsAndSkews) {
  DataSet ds = GenerateDataSet(DataSetKind::kYago, 30000);
  IntDataSetAdapter<HotTrie> adapter(&ds);
  auto spec = YcsbWorkload('B', Distribution::kZipfian);
  RunResult r = RunBenchmark(adapter, ds, 20000, 20000, spec);
  EXPECT_EQ(r.failed_ops, 0u);
}

}  // namespace
}  // namespace ycsb
}  // namespace hot
