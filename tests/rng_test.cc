// Sanity tests for the benchmark RNGs: determinism, bounds, and the shape
// of the Zipfian / latest distributions used by the YCSB workloads.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace hot {
namespace {

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  SplitMix64 a2(1);
  for (int i = 0; i < 100; ++i) differs |= (a2.Next() != c.Next());
  EXPECT_TRUE(differs);
}

TEST(SplitMix64, BoundedStaysInBounds) {
  SplitMix64 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, BoundedIsRoughlyUniform) {
  SplitMix64 rng(9);
  constexpr int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Zipfian, StaysInBoundsAndSkewed) {
  constexpr uint64_t kN = 1000;
  ZipfianGenerator zipf(kN, 0.99, 123);
  std::vector<uint64_t> counts(kN, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  // Rank 0 should dominate: with theta=0.99 its probability is ~1/zeta(n),
  // far above uniform 1/n.
  EXPECT_GT(counts[0], kDraws / 20);
  // The head (top 10%) should hold well over half the mass.
  uint64_t head = 0;
  for (size_t i = 0; i < kN / 10; ++i) head += counts[i];
  EXPECT_GT(head, static_cast<uint64_t>(kDraws) * 6 / 10);
}

// Regression (ISSUE 1): n == 1 made the eta denominator negative
// (zeta2/zetan > 1) and n == 2 made it 0/0; neither domain may ever draw a
// rank outside [0, n).
TEST(Zipfian, DegenerateDomains) {
  ZipfianGenerator one(1, 0.99, 7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(one.Next(), 0u);
  EXPECT_EQ(one.RankFor(0.0), 0u);
  EXPECT_EQ(one.RankFor(std::nextafter(1.0, 0.0)), 0u);
  EXPECT_EQ(one.RankFor(1.0), 0u);

  ZipfianGenerator two(2, 0.99, 7);
  bool saw[2] = {false, false};
  for (int i = 0; i < 4000; ++i) {
    uint64_t v = two.Next();
    ASSERT_LT(v, 2u);
    saw[v] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
  EXPECT_LT(two.RankFor(std::nextafter(1.0, 0.0)), 2u);
  EXPECT_LT(two.RankFor(1.0), 2u);

  // n == 0 must not divide by zero; it collapses to the single-rank domain.
  ZipfianGenerator zero(0, 0.99, 7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(zero.Next(), 0u);
}

// Regression (ISSUE 1): u close enough to 1.0 made eta*u - eta + 1.0 round
// to exactly 1.0, so Next() returned n itself — one past the domain.
TEST(Zipfian, RankStaysBelowNAtRoundingBoundary) {
  for (uint64_t n : {4ULL, 100ULL, 1000ULL, 1000000ULL}) {
    ZipfianGenerator zipf(n, 0.99, 7);
    EXPECT_EQ(zipf.RankFor(0.0), 0u) << n;
    EXPECT_LT(zipf.RankFor(std::nextafter(1.0, 0.0)), n) << n;
    EXPECT_LT(zipf.RankFor(1.0), n) << n;
    // A fine sweep across [0, 1] must stay in the domain everywhere.
    for (int i = 0; i <= 100000; ++i) {
      ASSERT_LT(zipf.RankFor(i * 1e-5), n) << n;
    }
  }
}

// Distribution sanity (ISSUE 1): all draws in range, and the rank-0
// frequency must match the theoretical 1/zeta(n, theta) head probability.
TEST(Zipfian, HeadFrequencyMatchesTheory) {
  constexpr uint64_t kN = 1000;
  constexpr double kTheta = 0.99;
  double zetan = 0.0;
  for (uint64_t i = 1; i <= kN; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), kTheta);
  }
  ZipfianGenerator zipf(kN, kTheta, 99);
  constexpr int kDraws = 400000;
  int rank0 = 0;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, kN);
    if (v == 0) ++rank0;
  }
  double freq0 = static_cast<double>(rank0) / kDraws;
  EXPECT_NEAR(freq0, 1.0 / zetan, 0.1 / zetan);
}

TEST(Latest, SkewsTowardsRecent) {
  LatestGenerator latest(100000, 77);
  uint64_t current_max = 50000;
  int near_top = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = latest.Next(current_max);
    ASSERT_LT(v, current_max);
    if (v >= current_max - current_max / 10) ++near_top;
  }
  EXPECT_GT(near_top, kDraws / 2);
}

TEST(Latest, HandlesSmallMax) {
  LatestGenerator latest(10, 3);
  EXPECT_EQ(latest.Next(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(latest.Next(1), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(latest.Next(3), 3u);
}

}  // namespace
}  // namespace hot
