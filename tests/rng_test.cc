// Sanity tests for the benchmark RNGs: determinism, bounds, and the shape
// of the Zipfian / latest distributions used by the YCSB workloads.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace hot {
namespace {

TEST(SplitMix64, DeterministicAndSeedSensitive) {
  SplitMix64 a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  bool differs = false;
  SplitMix64 a2(1);
  for (int i = 0; i < 100; ++i) differs |= (a2.Next() != c.Next());
  EXPECT_TRUE(differs);
}

TEST(SplitMix64, BoundedStaysInBounds) {
  SplitMix64 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, BoundedIsRoughlyUniform) {
  SplitMix64 rng(9);
  constexpr int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Zipfian, StaysInBoundsAndSkewed) {
  constexpr uint64_t kN = 1000;
  ZipfianGenerator zipf(kN, 0.99, 123);
  std::vector<uint64_t> counts(kN, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  // Rank 0 should dominate: with theta=0.99 its probability is ~1/zeta(n),
  // far above uniform 1/n.
  EXPECT_GT(counts[0], kDraws / 20);
  // The head (top 10%) should hold well over half the mass.
  uint64_t head = 0;
  for (size_t i = 0; i < kN / 10; ++i) head += counts[i];
  EXPECT_GT(head, static_cast<uint64_t>(kDraws) * 6 / 10);
}

TEST(Latest, SkewsTowardsRecent) {
  LatestGenerator latest(100000, 77);
  uint64_t current_max = 50000;
  int near_top = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t v = latest.Next(current_max);
    ASSERT_LT(v, current_max);
    if (v >= current_max - current_max / 10) ++near_top;
  }
  EXPECT_GT(near_top, kDraws / 2);
}

TEST(Latest, HandlesSmallMax) {
  LatestGenerator latest(10, 3);
  EXPECT_EQ(latest.Next(0), 0u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(latest.Next(1), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_LT(latest.Next(3), 3u);
}

}  // namespace
}  // namespace hot
