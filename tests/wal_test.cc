// WAL tier (persist/wal.h): frame round-trip, torn-tail tolerance at EVERY
// truncation offset, corruption detection for every flipped byte of the
// final record, group commit accounting, rotation/prune, and resume-append
// after both clean and torn shutdowns.
//
// The torn-tail sweep is exhaustive rather than sampled: a segment of N
// frames is copied and truncated at every byte in [0, size], and the reader
// must (a) reject anything shorter than the file header, (b) deliver
// exactly the frames whose byte extent survived, and (c) report torn
// if-and-only-if the cut missed a frame boundary.  That property is what
// the crash harness's LSN prediction stands on.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "persist/wal.h"

namespace hot {
namespace persist {
namespace {

KeyRef K(const std::string& s) {
  return KeyRef(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hot_wal_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    for (const auto& [seq, p] : ListWalSegments(path)) {
      (void)seq;
      ::unlink(p.c_str());
    }
    ::rmdir(path.c_str());
  }
};

struct Rec {
  uint64_t lsn;
  uint8_t op;
  std::string key;
  uint64_t value;
};

std::vector<Rec> ReadAll(const std::string& path, WalReadResult* rr) {
  std::vector<Rec> out;
  *rr = ReadWalSegment(path, [&](const WalRecord& r) {
    out.push_back({r.lsn, r.op,
                   std::string(reinterpret_cast<const char*>(r.key.data()),
                               r.key.size()),
                   r.value});
  });
  return out;
}

std::vector<uint8_t> Slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  return data;
}

void Spit(const std::string& path, const std::vector<uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!data.empty()) {
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
  }
  std::fclose(f);
}

// Writes `n` alternating put/delete records and returns their byte extents
// (end offset of each frame in the segment file).
std::vector<uint64_t> WriteSegment(const std::string& dir, unsigned n,
                                   std::vector<Rec>* written) {
  Wal wal;
  Wal::Options opt;
  opt.durability = Durability::kNone;
  std::string err;
  EXPECT_TRUE(wal.Open(dir, WalResume(), opt, &err)) << err;
  std::vector<uint64_t> ends;
  uint64_t off = kWalFileHeaderBytes;
  for (unsigned i = 0; i < n; ++i) {
    std::string key = "key-" + std::to_string(i * 7 % n);
    uint8_t op = i % 3 == 2 ? kWalDelete : kWalPut;
    uint64_t value = op == kWalPut ? 1000 + i : 0;
    uint64_t lsn = wal.Append(op, K(key), value);
    EXPECT_EQ(lsn, i + 1);
    written->push_back({lsn, op, key, op == kWalPut ? value : 0});
    off += kWalFrameHeaderBytes + 13 + key.size() + (op == kWalPut ? 8 : 0);
    ends.push_back(off);
  }
  wal.Close();
  return ends;
}

TEST(Wal, RoundTrip) {
  TempDir dir;
  std::vector<Rec> written;
  WriteSegment(dir.path, 57, &written);

  WalReadResult rr;
  std::vector<Rec> read =
      ReadAll(dir.path + "/" + WalSegmentName(1), &rr);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_FALSE(rr.torn);
  EXPECT_EQ(rr.frames, 57u);
  EXPECT_EQ(rr.last_lsn, 57u);
  ASSERT_EQ(read.size(), written.size());
  for (size_t i = 0; i < read.size(); ++i) {
    EXPECT_EQ(read[i].lsn, written[i].lsn);
    EXPECT_EQ(read[i].op, written[i].op);
    EXPECT_EQ(read[i].key, written[i].key);
    EXPECT_EQ(read[i].value, written[i].value);
  }
}

TEST(Wal, TornTailEveryTruncationOffset) {
  TempDir dir;
  std::vector<Rec> written;
  std::vector<uint64_t> ends = WriteSegment(dir.path, 9, &written);
  const std::string src = dir.path + "/" + WalSegmentName(1);
  std::vector<uint8_t> full = Slurp(src);
  ASSERT_EQ(full.size(), ends.back());

  const std::string cut = dir.path + "/cut.bin";
  for (size_t x = 0; x <= full.size(); ++x) {
    Spit(cut, std::vector<uint8_t>(full.begin(), full.begin() + x));
    WalReadResult rr;
    std::vector<Rec> read = ReadAll(cut, &rr);
    if (x < kWalFileHeaderBytes) {
      // Not even a header: an error, never a silently empty log.
      EXPECT_FALSE(rr.ok) << "offset " << x;
      continue;
    }
    ASSERT_TRUE(rr.ok) << "offset " << x << ": " << rr.error;
    uint64_t expect_frames = 0;
    uint64_t expect_end = kWalFileHeaderBytes;
    for (uint64_t e : ends) {
      if (e <= x) {
        ++expect_frames;
        expect_end = e;
      }
    }
    EXPECT_EQ(rr.frames, expect_frames) << "offset " << x;
    EXPECT_EQ(rr.valid_end, expect_end) << "offset " << x;
    EXPECT_EQ(rr.torn, x != expect_end) << "offset " << x;
    EXPECT_EQ(read.size(), expect_frames);
    if (expect_frames > 0) EXPECT_EQ(rr.last_lsn, expect_frames);
  }
  ::unlink(cut.c_str());
}

TEST(Wal, EveryFlippedByteOfFinalRecordIsRejected) {
  TempDir dir;
  std::vector<Rec> written;
  std::vector<uint64_t> ends = WriteSegment(dir.path, 5, &written);
  const std::string src = dir.path + "/" + WalSegmentName(1);
  std::vector<uint8_t> full = Slurp(src);
  const uint64_t last_start = ends[ends.size() - 2];

  const std::string mut = dir.path + "/mut.bin";
  // Every byte of the final frame — length field, CRC field, body — and
  // every bit position cycled across them.
  for (uint64_t at = last_start; at < full.size(); ++at) {
    std::vector<uint8_t> damaged = full;
    damaged[at] ^= static_cast<uint8_t>(1u << (at % 8));
    Spit(mut, damaged);
    WalReadResult rr;
    std::vector<Rec> read = ReadAll(mut, &rr);
    ASSERT_TRUE(rr.ok) << "offset " << at;
    EXPECT_TRUE(rr.torn) << "offset " << at;
    EXPECT_EQ(rr.frames, written.size() - 1) << "offset " << at;
    EXPECT_EQ(rr.valid_end, last_start) << "offset " << at;
    ASSERT_EQ(read.size(), written.size() - 1);
    EXPECT_EQ(read.back().key, written[written.size() - 2].key);
  }
  // A flipped byte in the FILE header is not a torn tail — it means this
  // is not a readable segment at all.
  for (uint64_t at = 0; at < kWalFileHeaderBytes; ++at) {
    std::vector<uint8_t> damaged = full;
    damaged[at] ^= 0x10;
    Spit(mut, damaged);
    WalReadResult rr;
    ReadAll(mut, &rr);
    EXPECT_FALSE(rr.ok) << "header offset " << at;
  }
  ::unlink(mut.c_str());
}

TEST(Wal, GroupCommitMakesEveryAckedRecordDurable) {
  TempDir dir;
  Wal wal;
  Wal::Options opt;
  opt.durability = Durability::kSync;
  std::string err;
  ASSERT_TRUE(wal.Open(dir.path, WalResume(), opt, &err)) << err;

  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 200;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        uint64_t lsn = wal.Append(kWalPut, K(key), i);
        std::string cerr;
        ASSERT_TRUE(wal.Commit(lsn, &cerr)) << cerr;
        ASSERT_LE(lsn, wal.durable_lsn());
      }
    });
  }
  for (auto& t : threads) t.join();

  WalStats st = wal.stats();
  EXPECT_EQ(st.appends, kThreads * kPerThread);
  EXPECT_EQ(st.group_committed, kThreads * kPerThread);
  EXPECT_EQ(wal.durable_lsn(), kThreads * kPerThread);
  EXPECT_GE(st.fsyncs, 1u);
  // The whole point of group commit: every append became durable through
  // SOME leader's fsync, and the records all round-trip.
  wal.Close();
  WalReadResult rr;
  std::vector<Rec> read = ReadAll(dir.path + "/" + WalSegmentName(1), &rr);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_FALSE(rr.torn);
  EXPECT_EQ(read.size(), kThreads * kPerThread);
}

TEST(Wal, RotatePruneAndCut) {
  TempDir dir;
  Wal wal;
  Wal::Options opt;
  opt.durability = Durability::kNone;
  std::string err;
  ASSERT_TRUE(wal.Open(dir.path, WalResume(), opt, &err)) << err;
  for (unsigned i = 0; i < 10; ++i) {
    wal.Append(kWalPut, K("a" + std::to_string(i)), i);
  }
  uint64_t cut = wal.Rotate(&err);
  EXPECT_EQ(cut, 10u);
  EXPECT_EQ(wal.current_seq(), 2u);
  for (unsigned i = 0; i < 5; ++i) {
    wal.Append(kWalPut, K("b" + std::to_string(i)), i);
  }
  ASSERT_EQ(ListWalSegments(dir.path).size(), 2u);

  // Old segment intact until pruned; the new one starts above the cut.
  EXPECT_EQ(wal.PruneBelowCurrent(), 1u);
  auto segs = ListWalSegments(dir.path);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].first, 2u);
  wal.Close();

  WalReadResult rr;
  std::vector<Rec> read = ReadAll(segs[0].second, &rr);
  ASSERT_TRUE(rr.ok) << rr.error;
  ASSERT_EQ(read.size(), 5u);
  EXPECT_EQ(read.front().lsn, cut + 1);
  EXPECT_EQ(read.back().lsn, cut + 5);
}

TEST(Wal, ResumeAppendAfterTornTail) {
  TempDir dir;
  std::vector<Rec> written;
  std::vector<uint64_t> ends = WriteSegment(dir.path, 6, &written);
  const std::string path = dir.path + "/" + WalSegmentName(1);

  // Crash mid-final-frame: keep 5 full frames plus half of the sixth.
  std::vector<uint8_t> full = Slurp(path);
  uint64_t torn_at = ends[4] + (ends[5] - ends[4]) / 2;
  Spit(path, std::vector<uint8_t>(full.begin(), full.begin() + torn_at));

  WalReadResult rr;
  ReadAll(path, &rr);
  ASSERT_TRUE(rr.ok);
  ASSERT_TRUE(rr.torn);
  ASSERT_EQ(rr.frames, 5u);

  // Resume exactly as recovery would: truncate to valid_end, next LSN 6.
  WalResume resume;
  resume.seq = 1;
  resume.valid_end = rr.valid_end;
  resume.next_lsn = rr.last_lsn + 1;
  resume.segment_exists = true;
  Wal wal;
  Wal::Options opt;
  opt.durability = Durability::kNone;
  std::string err;
  ASSERT_TRUE(wal.Open(dir.path, resume, opt, &err)) << err;
  EXPECT_EQ(wal.Append(kWalPut, K("resumed"), 99), 6u);
  wal.Close();

  std::vector<Rec> read = ReadAll(path, &rr);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_FALSE(rr.torn);
  ASSERT_EQ(read.size(), 6u);
  EXPECT_EQ(read.back().key, "resumed");
  EXPECT_EQ(read.back().lsn, 6u);
}

TEST(Wal, SegmentNameRoundTrip) {
  EXPECT_EQ(WalSegmentName(1), "wal-00000001.log");
  uint64_t seq = 0;
  EXPECT_TRUE(ParseWalSegmentName("wal-00000042.log", &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(ParseWalSegmentName("wal-.log", &seq));
  EXPECT_FALSE(ParseWalSegmentName("wal-12x34.log", &seq));
  EXPECT_FALSE(ParseWalSegmentName("snapshot.snap", &seq));
}

// Regression: an appender crossing the write-buffer threshold while a
// group-commit leader's flush was mid-I/O (lock released) used to start a
// SECOND concurrent flush — two threads writing the same fd can interleave
// frames and publish a durable LSN ahead of the bytes an fsync actually
// covered.  A tiny threshold plus a competing background flusher makes
// that window constant; the appender must now skip while flushing_ is up.
TEST(Wal, ThresholdFlushWhileLeaderFlushInFlight) {
  TempDir dir;
  Wal wal;
  Wal::Options opt;
  opt.durability = Durability::kSync;
  opt.write_buffer_bytes = 64;  // every append crosses the threshold
  opt.flush_interval_ms = 1;    // a background flusher competes too
  std::string err;
  ASSERT_TRUE(wal.Open(dir.path, WalResume(), opt, &err)) << err;

  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 300;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        std::string key = "thr" + std::to_string(t) + "-" + std::to_string(i);
        uint64_t lsn = wal.Append(kWalPut, K(key), i);
        std::string cerr;
        ASSERT_TRUE(wal.Commit(lsn, &cerr)) << cerr;
        ASSERT_LE(lsn, wal.durable_lsn());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wal.durable_lsn(), kThreads * kPerThread);
  wal.Close();

  // Single-leader flushing leaves one clean segment: every frame intact
  // and LSNs in strict file order 1..N — interleaved writes from a second
  // concurrent flusher would garble both.
  WalReadResult rr;
  std::vector<Rec> read = ReadAll(dir.path + "/" + WalSegmentName(1), &rr);
  ASSERT_TRUE(rr.ok) << rr.error;
  EXPECT_FALSE(rr.torn);
  ASSERT_EQ(read.size(), kThreads * kPerThread);
  for (size_t i = 0; i < read.size(); ++i) {
    ASSERT_EQ(read[i].lsn, i + 1);
  }
}

TEST(Wal, AsyncDurabilityFlushesInBackground) {
  TempDir dir;
  Wal wal;
  Wal::Options opt;
  opt.durability = Durability::kAsync;
  opt.flush_interval_ms = 5;
  std::string err;
  ASSERT_TRUE(wal.Open(dir.path, WalResume(), opt, &err)) << err;
  for (unsigned i = 0; i < 100; ++i) {
    uint64_t lsn = wal.Append(kWalPut, K("k" + std::to_string(i)), i);
    // Commit is a configured no-op under async — it must not block.
    ASSERT_TRUE(wal.Commit(lsn, &err));
  }
  // The background flusher must make the log durable without any Commit
  // pressure, within a few intervals.
  for (int spin = 0; spin < 1000 && wal.durable_lsn() < 100; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(wal.durable_lsn(), 100u);
  wal.Close();
}

}  // namespace
}  // namespace persist
}  // namespace hot
