// Trace serialization, parsing, generation determinism, and shrinking
// (testing/trace.h, testing/shrink.h).  The byte-identity guarantees here
// are what make fuzz_replay reproduce a recorded trace exactly.

#include "testing/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "testing/keyspace.h"
#include "testing/shrink.h"

namespace hot {
namespace testing {
namespace {

TraceGenConfig SmallConfig(KeySpaceKind kind, uint64_t seed) {
  TraceGenConfig cfg;
  cfg.kind = kind;
  cfg.n = 128;
  cfg.seed = seed;
  cfg.num_ops = 300;
  cfg.audit_every = 50;
  return cfg;
}

TEST(TraceIo, RoundTripIsByteIdenticalForEveryKeySpaceKind) {
  for (unsigned k = 0; k < kNumKeySpaceKinds; ++k) {
    KeySpaceKind kind = static_cast<KeySpaceKind>(k);
    Trace t = GenerateTrace(SmallConfig(kind, 7 + k));
    std::string text = t.Serialize();
    Trace back;
    std::string err;
    ASSERT_TRUE(Trace::Parse(text, &back, &err))
        << KeySpaceKindName(kind) << ": " << err;
    EXPECT_EQ(back.Serialize(), text) << KeySpaceKindName(kind);
    EXPECT_EQ(back.ops, t.ops) << KeySpaceKindName(kind);
    EXPECT_EQ(back.ks_kind, t.ks_kind);
    EXPECT_EQ(back.ks_n, t.ks_n);
    EXPECT_EQ(back.ks_seed, t.ks_seed);
  }
}

TEST(TraceIo, GenerationIsDeterministic) {
  TraceGenConfig cfg = SmallConfig(KeySpaceKind::kUniform, 99);
  cfg.zipf_pick = true;
  EXPECT_EQ(GenerateTrace(cfg).Serialize(), GenerateTrace(cfg).Serialize());
  cfg.seed = 100;
  EXPECT_NE(GenerateTrace(cfg).Serialize(),
            GenerateTrace(SmallConfig(KeySpaceKind::kUniform, 99)).Serialize());
}

TEST(TraceIo, KeySpaceBuildIsDeterministic) {
  for (unsigned k = 0; k < kNumKeySpaceKinds; ++k) {
    KeySpaceKind kind = static_cast<KeySpaceKind>(k);
    KeySpace a = BuildKeySpace(kind, 200, 5);
    KeySpace b = BuildKeySpace(kind, 200, 5);
    ASSERT_EQ(a.size(), b.size()) << KeySpaceKindName(kind);
    ASSERT_GT(a.size(), 0u) << KeySpaceKindName(kind);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.ValueOf(static_cast<uint32_t>(i)),
                b.ValueOf(static_cast<uint32_t>(i)));
    }
  }
}

TEST(TraceIo, ParseRejectsMalformedInput) {
  Trace t;
  std::string err;
  EXPECT_FALSE(Trace::Parse("nonsense\n", &t, &err));
  EXPECT_FALSE(Trace::Parse("hot-fuzz-trace v1\n", &t, &err));
  EXPECT_FALSE(Trace::Parse(
      "hot-fuzz-trace v1\nkeyspace martian 10 1\nops 0\nend\n", &t, &err));
  // Declared count disagrees with the body.
  EXPECT_FALSE(Trace::Parse(
      "hot-fuzz-trace v1\nkeyspace uniform 10 1\nops 2\ni 3\nend\n", &t,
      &err));
  // Missing terminator.
  EXPECT_FALSE(Trace::Parse(
      "hot-fuzz-trace v1\nkeyspace uniform 10 1\nops 1\ni 3\n", &t, &err));
  // Unknown op code.
  EXPECT_FALSE(Trace::Parse(
      "hot-fuzz-trace v1\nkeyspace uniform 10 1\nops 1\nx 3\nend\n", &t,
      &err));
  // Scan needs two operands.
  EXPECT_FALSE(Trace::Parse(
      "hot-fuzz-trace v1\nkeyspace uniform 10 1\nops 1\ns 3\nend\n", &t,
      &err));
  // A well-formed minimal trace parses.
  EXPECT_TRUE(Trace::Parse(
      "hot-fuzz-trace v1\nkeyspace uniform 10 1\nops 2\ni 3\na\nend\n", &t,
      &err))
      << err;
  EXPECT_EQ(t.ops.size(), 2u);
  EXPECT_EQ(t.ops[0].kind, OpKind::kInsert);
  EXPECT_EQ(t.ops[1].kind, OpKind::kAudit);
}

TEST(TraceIo, SaveAndLoadFileRoundTrip) {
  Trace t = GenerateTrace(SmallConfig(KeySpaceKind::kPrefix, 11));
  std::string path = ::testing::TempDir() + "/trace_io_test.trace";
  ASSERT_TRUE(t.SaveFile(path));
  Trace back;
  std::string err;
  ASSERT_TRUE(Trace::LoadFile(path, &back, &err)) << err;
  EXPECT_EQ(back.Serialize(), t.Serialize());
  std::remove(path.c_str());
  EXPECT_FALSE(Trace::LoadFile(path + ".missing", &back, &err));
}

TEST(TraceIo, ShrinkReducesToPredicateCore) {
  // Synthetic predicate: the trace "fails" while it still holds >= 3 insert
  // ops; the shrinker should strip everything else.
  Trace t = GenerateTrace(SmallConfig(KeySpaceKind::kUniform, 3));
  auto inserts = [](const Trace& tr) {
    size_t c = 0;
    for (const Op& op : tr.ops) c += op.kind == OpKind::kInsert;
    return c;
  };
  ASSERT_GE(inserts(t), 3u);
  ShrinkStats st;
  Trace min = ShrinkTrace(
      t, [&](const Trace& cand) { return inserts(cand) >= 3; }, &st);
  EXPECT_EQ(min.ops.size(), 3u);
  EXPECT_EQ(inserts(min), 3u);
  EXPECT_GE(st.predicate_calls, 1u);
  EXPECT_EQ(st.ops_before, t.ops.size());
  EXPECT_EQ(st.ops_after, 3u);
  // The shrunk keyspace also came down.
  EXPECT_LT(min.ks_n, t.ks_n);
}

}  // namespace
}  // namespace testing
}  // namespace hot
