// Tests for epoch-based reclamation (paper §5 substrate).

#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace hot {
namespace {

std::atomic<int> g_deleted{0};

void CountingDeleter(void* p) {
  ++g_deleted;
  ::operator delete(p);
}

TEST(Epoch, SingleThreadedRetireAndCollect) {
  g_deleted = 0;
  EpochManager epochs;
  {
    EpochGuard guard(&epochs);
    for (int i = 0; i < 10; ++i) {
      epochs.Retire(::operator new(16), CountingDeleter);
    }
    // Still pinned: nothing should be freed while we could observe it.
    EXPECT_EQ(g_deleted.load(), 0);
  }
  epochs.CollectAll();
  EXPECT_EQ(g_deleted.load(), 10);
  EXPECT_EQ(epochs.RetiredCount(), 0u);
}

TEST(Epoch, CollectIsDeferredWhileReaderPinned) {
  g_deleted = 0;
  EpochManager epochs;
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    epochs.Enter();
    reader_pinned = true;
    while (!release_reader) std::this_thread::yield();
    epochs.Leave();
  });
  while (!reader_pinned) std::this_thread::yield();

  {
    EpochGuard guard(&epochs);
    epochs.Retire(::operator new(16), CountingDeleter);
  }
  // The writer's Leave may collect, but the reader entered before the
  // retirement epoch, so the object must survive.
  size_t slot = epochs.RegisterThread();
  epochs.Collect(slot);
  EXPECT_EQ(g_deleted.load(), 0);

  release_reader = true;
  reader.join();
  epochs.CollectAll();
  EXPECT_EQ(g_deleted.load(), 1);
}

TEST(Epoch, ManyThreadsNoLeaks) {
  g_deleted = 0;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  {
    EpochManager epochs;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&epochs] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          EpochGuard guard(&epochs);
          epochs.Retire(::operator new(8), CountingDeleter);
        }
      });
    }
    for (auto& th : threads) th.join();
    // Destructor collects everything still in limbo.
  }
  EXPECT_EQ(g_deleted.load(), kThreads * kOpsPerThread);
}

// Regression (ISSUE 1): AcquireSlot used to hand slot 0 to every thread past
// kMaxThreads, so two concurrently active threads shared one epoch slot and
// each could overwrite the other's pin, allowing premature reclamation.
// Post-fix, an overflow thread blocks until a registered thread exits and
// releases its slot, so no two concurrently registered threads ever share
// one.
TEST(Epoch, OverflowThreadsNeverAliasActiveSlots) {
  constexpr size_t kHolders = EpochManager::kMaxThreads;
  constexpr size_t kExtras = 4;
  EpochManager epochs;
  std::vector<std::atomic<int>> owners(kHolders);
  for (auto& o : owners) o.store(0);
  std::atomic<size_t> holders_ready{0};
  std::atomic<size_t> extras_registered{0};
  std::atomic<int> alias_errors{0};
  std::atomic<bool> release_holders{false};

  auto claim = [&](size_t slot) {
    ASSERT_LT(slot, kHolders);
    if (owners[slot].fetch_add(1) != 0) ++alias_errors;
  };
  auto unclaim = [&](size_t slot) { owners[slot].fetch_sub(1); };

  std::vector<std::thread> holders;
  for (size_t t = 0; t < kHolders; ++t) {
    holders.emplace_back([&] {
      size_t slot = epochs.RegisterThread();
      claim(slot);
      ++holders_ready;
      while (!release_holders) std::this_thread::yield();
      {
        EpochGuard guard(&epochs);
        epochs.Retire(::operator new(8), [](void* p) { ::operator delete(p); });
      }
      unclaim(slot);
    });
  }
  while (holders_ready.load() < kHolders) std::this_thread::yield();

  // Every slot is now held.  The extra threads must not obtain (and alias)
  // an occupied slot; they block until a holder exits.
  std::vector<std::thread> extras;
  for (size_t t = 0; t < kExtras; ++t) {
    extras.emplace_back([&] {
      size_t slot = epochs.RegisterThread();  // blocks while table is full
      claim(slot);
      ++extras_registered;
      EpochGuard guard(&epochs);
      unclaim(slot);
    });
  }
  // Give the extras ample time to (incorrectly) grab an occupied slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(extras_registered.load(), 0u)
      << "overflow threads registered while every slot was still held";

  release_holders = true;
  for (auto& th : holders) th.join();
  for (auto& th : extras) th.join();
  EXPECT_EQ(extras_registered.load(), kExtras);
  EXPECT_EQ(alias_errors.load(), 0);
}

// Regression (ISSUE 1): nested EpochGuards on one thread used to clobber the
// pin — the inner Leave() stored kIdle, unpinning the still-active outer
// guard, so a concurrent collector could reclaim objects the outer guard was
// still protecting.
TEST(Epoch, NestedGuardsKeepOuterPin) {
  g_deleted = 0;
  EpochManager epochs;
  epochs.Enter();                  // outer pin
  { EpochGuard inner(&epochs); }   // nested guard must not unpin the outer

  std::thread collector([&] {
    {
      EpochGuard guard(&epochs);
      epochs.Retire(::operator new(16), CountingDeleter);
    }
    size_t slot = epochs.RegisterThread();
    for (int i = 0; i < 4; ++i) epochs.Collect(slot);
  });
  collector.join();
  // The outer pin predates the retirement, so the object must survive.
  EXPECT_EQ(g_deleted.load(), 0);

  epochs.Leave();
  epochs.CollectAll();
  EXPECT_EQ(g_deleted.load(), 1);
}

// Deeply nested guards: only the outermost Enter/Leave pair pins/unpins.
TEST(Epoch, DeeplyNestedGuardsBalance) {
  g_deleted = 0;
  EpochManager epochs;
  {
    EpochGuard outer(&epochs);
    for (int round = 0; round < 3; ++round) {
      EpochGuard a(&epochs);
      { EpochGuard b(&epochs); }
    }
    epochs.Retire(::operator new(8), CountingDeleter);
    size_t slot = epochs.RegisterThread();
    epochs.Collect(slot);
    EXPECT_EQ(g_deleted.load(), 0);  // still pinned by the outer guard
  }
  epochs.CollectAll();
  EXPECT_EQ(g_deleted.load(), 1);
}

TEST(Epoch, GlobalEpochAdvances) {
  EpochManager epochs;
  uint64_t e0 = epochs.global_epoch();
  for (int i = 0; i < 1000; ++i) {
    EpochGuard guard(&epochs);
    epochs.Retire(::operator new(8), [](void* p) { ::operator delete(p); });
  }
  epochs.CollectAll();
  EXPECT_GT(epochs.global_epoch(), e0);
}

}  // namespace
}  // namespace hot
