// Tests for epoch-based reclamation (paper §5 substrate).

#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace hot {
namespace {

std::atomic<int> g_deleted{0};

void CountingDeleter(void* p) {
  ++g_deleted;
  ::operator delete(p);
}

TEST(Epoch, SingleThreadedRetireAndCollect) {
  g_deleted = 0;
  EpochManager epochs;
  {
    EpochGuard guard(&epochs);
    for (int i = 0; i < 10; ++i) {
      epochs.Retire(::operator new(16), CountingDeleter);
    }
    // Still pinned: nothing should be freed while we could observe it.
    EXPECT_EQ(g_deleted.load(), 0);
  }
  epochs.CollectAll();
  EXPECT_EQ(g_deleted.load(), 10);
  EXPECT_EQ(epochs.RetiredCount(), 0u);
}

TEST(Epoch, CollectIsDeferredWhileReaderPinned) {
  g_deleted = 0;
  EpochManager epochs;
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};

  std::thread reader([&] {
    epochs.Enter();
    reader_pinned = true;
    while (!release_reader) std::this_thread::yield();
    epochs.Leave();
  });
  while (!reader_pinned) std::this_thread::yield();

  {
    EpochGuard guard(&epochs);
    epochs.Retire(::operator new(16), CountingDeleter);
  }
  // The writer's Leave may collect, but the reader entered before the
  // retirement epoch, so the object must survive.
  size_t slot = epochs.RegisterThread();
  epochs.Collect(slot);
  EXPECT_EQ(g_deleted.load(), 0);

  release_reader = true;
  reader.join();
  epochs.CollectAll();
  EXPECT_EQ(g_deleted.load(), 1);
}

TEST(Epoch, ManyThreadsNoLeaks) {
  g_deleted = 0;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  {
    EpochManager epochs;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&epochs] {
        for (int i = 0; i < kOpsPerThread; ++i) {
          EpochGuard guard(&epochs);
          epochs.Retire(::operator new(8), CountingDeleter);
        }
      });
    }
    for (auto& th : threads) th.join();
    // Destructor collects everything still in limbo.
  }
  EXPECT_EQ(g_deleted.load(), kThreads * kOpsPerThread);
}

TEST(Epoch, GlobalEpochAdvances) {
  EpochManager epochs;
  uint64_t e0 = epochs.global_epoch();
  for (int i = 0; i < 1000; ++i) {
    EpochGuard guard(&epochs);
    epochs.Retire(::operator new(8), [](void* p) { ::operator delete(p); });
  }
  epochs.CollectAll();
  EXPECT_GT(epochs.global_epoch(), e0);
}

}  // namespace
}  // namespace hot
