// Cross-index differential tests: every index structure in the repository
// (HOT, ART, B+-tree, Masstree, Patricia) implements the same contract —
// Insert(value) / Lookup(key) / Remove(key) / ScanFrom(start, limit, fn) —
// so one typed suite validates them all against std::set oracles, over both
// integer and string keys.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "art/art.h"
#include "btree/btree.h"
#include "common/extractors.h"
#include "common/rng.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "patricia/patricia.h"

namespace hot {
namespace {

// ---------------------------------------------------------------------------
// Uniform adapters
// ---------------------------------------------------------------------------

template <template <typename> class Index>
struct U64Adapter {
  Index<U64KeyExtractor> index;

  bool Insert(uint64_t v) { return index.Insert(v); }
  bool Contains(uint64_t v) {
    return index.Lookup(KeyBuffer::FromU64(v).ref()).has_value();
  }
  bool Remove(uint64_t v) { return index.Remove(KeyBuffer::FromU64(v).ref()); }
  std::vector<uint64_t> Scan(uint64_t start, size_t limit) {
    std::vector<uint64_t> out;
    index.ScanFrom(KeyBuffer::FromU64(start).ref(), limit,
                   [&](uint64_t v) { out.push_back(v); });
    return out;
  }
  size_t Size() { return index.size(); }
};

// Patricia's ScanFrom signature differs (no limit parameter).
struct PatriciaU64Adapter {
  PatriciaTrie<U64KeyExtractor> index;

  bool Insert(uint64_t v) { return index.Insert(v); }
  bool Contains(uint64_t v) {
    return index.Lookup(KeyBuffer::FromU64(v).ref()).has_value();
  }
  bool Remove(uint64_t v) { return index.Remove(KeyBuffer::FromU64(v).ref()); }
  std::vector<uint64_t> Scan(uint64_t start, size_t limit) {
    std::vector<uint64_t> out;
    index.ScanFrom(KeyBuffer::FromU64(start).ref(), [&](uint64_t v) {
      out.push_back(v);
      return out.size() < limit;
    });
    return out;
  }
  size_t Size() { return index.size(); }
};

using HotU64 = U64Adapter<HotTrie>;
using ArtU64 = U64Adapter<ArtTree>;
using BTreeU64 = U64Adapter<BTree>;
using MasstreeU64 = U64Adapter<Masstree>;

template <typename T>
class U64IndexTest : public ::testing::Test {
 protected:
  T adapter_;
};

using U64IndexTypes = ::testing::Types<HotU64, ArtU64, BTreeU64, MasstreeU64,
                                       PatriciaU64Adapter>;
TYPED_TEST_SUITE(U64IndexTest, U64IndexTypes);

TYPED_TEST(U64IndexTest, EmptyBehaviour) {
  auto& idx = this->adapter_;
  EXPECT_EQ(idx.Size(), 0u);
  EXPECT_FALSE(idx.Contains(1));
  EXPECT_FALSE(idx.Remove(1));
  EXPECT_TRUE(idx.Scan(0, 10).empty());
}

TYPED_TEST(U64IndexTest, InsertLookupRemoveSmall) {
  auto& idx = this->adapter_;
  for (uint64_t v : {5u, 1u, 9u, 3u, 7u}) EXPECT_TRUE(idx.Insert(v));
  EXPECT_FALSE(idx.Insert(5));
  EXPECT_EQ(idx.Size(), 5u);
  for (uint64_t v : {1u, 3u, 5u, 7u, 9u}) EXPECT_TRUE(idx.Contains(v));
  for (uint64_t v : {0u, 2u, 4u, 6u, 8u, 10u}) EXPECT_FALSE(idx.Contains(v));
  EXPECT_TRUE(idx.Remove(5));
  EXPECT_FALSE(idx.Remove(5));
  EXPECT_FALSE(idx.Contains(5));
  EXPECT_EQ(idx.Size(), 4u);
}

TYPED_TEST(U64IndexTest, DifferentialRandomOps) {
  auto& idx = this->adapter_;
  std::set<uint64_t> oracle;
  SplitMix64 rng(1234);
  for (int i = 0; i < 40000; ++i) {
    uint64_t v = rng.NextBounded(10000);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        ASSERT_EQ(idx.Insert(v), oracle.insert(v).second) << "insert " << v;
        break;
      case 2:
        ASSERT_EQ(idx.Contains(v), oracle.count(v) > 0) << "lookup " << v;
        break;
      case 3:
        ASSERT_EQ(idx.Remove(v), oracle.erase(v) > 0) << "remove " << v;
        break;
    }
    ASSERT_EQ(idx.Size(), oracle.size());
  }
}

TYPED_TEST(U64IndexTest, DifferentialSparseKeys) {
  auto& idx = this->adapter_;
  std::set<uint64_t> oracle;
  SplitMix64 rng(777);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(idx.Insert(v), oracle.insert(v).second);
  }
  for (uint64_t v : oracle) ASSERT_TRUE(idx.Contains(v)) << v;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(idx.Contains(v), oracle.count(v) > 0);
  }
}

TYPED_TEST(U64IndexTest, ScansMatchOracle) {
  auto& idx = this->adapter_;
  std::set<uint64_t> oracle;
  SplitMix64 rng(4321);
  for (int i = 0; i < 15000; ++i) {
    uint64_t v = rng.NextBounded(1u << 22);
    idx.Insert(v);
    oracle.insert(v);
  }
  for (int probe = 0; probe < 300; ++probe) {
    uint64_t start = rng.NextBounded(1u << 22);
    std::vector<uint64_t> got = idx.Scan(start, 100);
    std::vector<uint64_t> want;
    for (auto it = oracle.lower_bound(start);
         it != oracle.end() && want.size() < 100; ++it) {
      want.push_back(*it);
    }
    ASSERT_EQ(got, want) << "start=" << start;
  }
}

TYPED_TEST(U64IndexTest, SequentialDense) {
  auto& idx = this->adapter_;
  for (uint64_t v = 0; v < 30000; ++v) ASSERT_TRUE(idx.Insert(v));
  for (uint64_t v = 0; v < 30000; ++v) ASSERT_TRUE(idx.Contains(v));
  EXPECT_FALSE(idx.Contains(30000));
  auto got = idx.Scan(29990, 100);
  EXPECT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 29990u);
  EXPECT_EQ(got.back(), 29999u);
  // Remove every other and verify.
  for (uint64_t v = 0; v < 30000; v += 2) ASSERT_TRUE(idx.Remove(v));
  for (uint64_t v = 0; v < 30000; ++v) {
    ASSERT_EQ(idx.Contains(v), v % 2 == 1) << v;
  }
}

// ---------------------------------------------------------------------------
// String-key suite
// ---------------------------------------------------------------------------

template <template <typename> class Index>
struct StringAdapter {
  std::vector<std::string> table;
  Index<StringTableExtractor> index{StringTableExtractor(&table)};

  // Inserts s (appends to the table).  Returns the index result.
  bool Insert(const std::string& s) {
    table.push_back(s);
    bool ok = index.Insert(table.size() - 1);
    if (!ok) table.pop_back();
    return ok;
  }
  bool Contains(const std::string& s) {
    return index.Lookup(TerminatedView(s)).has_value();
  }
  bool Remove(const std::string& s) { return index.Remove(TerminatedView(s)); }
  std::vector<std::string> Scan(const std::string& start, size_t limit) {
    std::vector<std::string> out;
    index.ScanFrom(TerminatedView(start), limit,
                   [&](uint64_t v) { out.push_back(table[v]); });
    return out;
  }
  size_t Size() { return index.size(); }
};

using HotStr = StringAdapter<HotTrie>;
using ArtStr = StringAdapter<ArtTree>;
using BTreeStr = StringAdapter<BTree>;
using MasstreeStr = StringAdapter<Masstree>;

template <typename T>
class StringIndexTest : public ::testing::Test {
 protected:
  T adapter_;

  static std::vector<std::string> MakeUrls(size_t n, uint64_t seed) {
    SplitMix64 rng(seed);
    std::set<std::string> out;
    const char* hosts[] = {"example.com", "db.research.org", "uibk.ac.at",
                           "tum.de", "sigmod.org"};
    const char* paths[] = {"papers", "people", "research", "teaching", "blog"};
    while (out.size() < n) {
      std::string url = "http://www.";
      url += hosts[rng.NextBounded(5)];
      url += "/";
      url += paths[rng.NextBounded(5)];
      url += "/item-" + std::to_string(rng.NextBounded(100000));
      url += "/page" + std::to_string(rng.NextBounded(50)) + ".html";
      out.insert(url);
    }
    return {out.begin(), out.end()};
  }
};

using StringIndexTypes = ::testing::Types<HotStr, ArtStr, BTreeStr, MasstreeStr>;
TYPED_TEST_SUITE(StringIndexTest, StringIndexTypes);

TYPED_TEST(StringIndexTest, UrlCorpusInsertLookup) {
  auto& idx = this->adapter_;
  auto urls = this->MakeUrls(4000, 99);
  std::vector<std::string> shuffled = urls;
  SplitMix64 rng(5);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  for (const auto& u : shuffled) ASSERT_TRUE(idx.Insert(u)) << u;
  EXPECT_EQ(idx.Size(), urls.size());
  for (const auto& u : urls) ASSERT_TRUE(idx.Contains(u)) << u;
  EXPECT_FALSE(idx.Contains("http://www.example.com/"));
  EXPECT_FALSE(idx.Insert(urls[0]));
}

TYPED_TEST(StringIndexTest, ScansAreLexicographic) {
  auto& idx = this->adapter_;
  auto urls = this->MakeUrls(2000, 7);
  for (const auto& u : urls) ASSERT_TRUE(idx.Insert(u));
  // urls is already sorted (std::set).
  for (size_t probe = 0; probe < 50; ++probe) {
    const std::string& start = urls[(probe * 37) % urls.size()];
    auto got = idx.Scan(start, 20);
    std::vector<std::string> want;
    for (size_t i = (probe * 37) % urls.size();
         i < urls.size() && want.size() < 20; ++i) {
      want.push_back(urls[i]);
    }
    ASSERT_EQ(got, want) << "start=" << start;
  }
  // A scan from before everything returns the global minimum first.
  auto from_start = idx.Scan("", 5);
  ASSERT_FALSE(from_start.empty());
  EXPECT_EQ(from_start[0], urls[0]);
}

TYPED_TEST(StringIndexTest, PrefixHeavyKeys) {
  auto& idx = this->adapter_;
  // Keys that are prefixes of one another plus deep shared prefixes.
  std::vector<std::string> keys = {"a", "aa", "aaa", "aaaa", "aaaaa",
                                   "aaaab", "aaab", "ab", "b"};
  std::string deep(100, 'x');
  keys.push_back(deep);
  keys.push_back(deep + "1");
  keys.push_back(deep + "2");
  for (const auto& k : keys) ASSERT_TRUE(idx.Insert(k)) << k;
  for (const auto& k : keys) ASSERT_TRUE(idx.Contains(k)) << k;
  EXPECT_FALSE(idx.Contains("aaaaaa"));
  EXPECT_FALSE(idx.Contains(deep + "3"));
  for (const auto& k : keys) ASSERT_TRUE(idx.Remove(k)) << k;
  EXPECT_EQ(idx.Size(), 0u);
}

TYPED_TEST(StringIndexTest, DifferentialWithRemovals) {
  auto& idx = this->adapter_;
  std::set<std::string> oracle;
  SplitMix64 rng(31337);
  const char alphabet[] = "abcdxyz019";
  auto random_key = [&] {
    std::string s;
    size_t len = 1 + rng.NextBounded(12);
    for (size_t i = 0; i < len; ++i) s += alphabet[rng.NextBounded(10)];
    return s;
  };
  for (int i = 0; i < 20000; ++i) {
    std::string k = random_key();
    switch (rng.NextBounded(4)) {
      case 0:
      case 1: {
        bool inserted = oracle.insert(k).second;
        ASSERT_EQ(idx.Insert(k), inserted) << k;
        break;
      }
      case 2:
        ASSERT_EQ(idx.Contains(k), oracle.count(k) > 0) << k;
        break;
      case 3:
        ASSERT_EQ(idx.Remove(k), oracle.erase(k) > 0) << k;
        break;
    }
    ASSERT_EQ(idx.Size(), oracle.size());
  }
  // Final state check.
  for (const auto& k : oracle) ASSERT_TRUE(idx.Contains(k)) << k;
}

}  // namespace
}  // namespace hot
