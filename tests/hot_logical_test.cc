// Unit tests for the logical node operations (paper §3.2 / §4.4): sparse
// partial key recoding, affected ranges, insertion, splits, pull-up
// support, and deletion.

#include "hot/logical_node.h"

#include <gtest/gtest.h>

namespace hot {
namespace {

// A node in the spirit of Fig. 5: bits {3,4,6,8,9}, seven entries.  The
// local Patricia trie (rank r0=bit3 ... r4=bit9):
//   r0=0: r1(bit4)=0 -> E0            sparse 00000
//         r1=1: r2(bit6)=0 -> E1      sparse 01000
//                r2=1      -> E2      sparse 01100
//   r0=1: r3(bit8)=0: r4(bit9)=0 ->E3 sparse 10000
//                     r4=1       ->E4 sparse 10001
//         r3=1: r4'(bit9)=0 -> E5     sparse 10010   (bit 9 reused)
//                r4'=1      -> E6     sparse 10011
LogicalNode Fig5Node() {
  LogicalNode ln;
  ln.height = 1;
  ln.count = 7;
  ln.num_bits = 5;
  uint16_t bits[] = {3, 4, 6, 8, 9};
  for (int i = 0; i < 5; ++i) ln.bits[i] = bits[i];
  uint32_t sparse5[] = {0b00000, 0b01000, 0b01100, 0b10000,
                        0b10001, 0b10010, 0b10011};
  for (int i = 0; i < 7; ++i) {
    ln.sparse[i] = sparse5[i] << 27;
    ln.entries[i] = HotEntry::MakeTid(100 + i);
  }
  return ln;
}

TEST(LogicalNode, RankBitAndPrefixMask) {
  EXPECT_EQ(LogicalNode::RankBit(0), 0x80000000u);
  EXPECT_EQ(LogicalNode::RankBit(31), 1u);
  EXPECT_EQ(LogicalNode::PrefixMask(0), 0u);
  EXPECT_EQ(LogicalNode::PrefixMask(1), 0x80000000u);
  EXPECT_EQ(LogicalNode::PrefixMask(3), 0xE0000000u);
}

TEST(LogicalNode, BitRank) {
  LogicalNode ln = Fig5Node();
  bool exists;
  EXPECT_EQ(BitRank(ln, 3, &exists), 0u);
  EXPECT_TRUE(exists);
  EXPECT_EQ(BitRank(ln, 9, &exists), 4u);
  EXPECT_TRUE(exists);
  EXPECT_EQ(BitRank(ln, 5, &exists), 2u);
  EXPECT_FALSE(exists);
  EXPECT_EQ(BitRank(ln, 0, &exists), 0u);
  EXPECT_FALSE(exists);
  EXPECT_EQ(BitRank(ln, 100, &exists), 5u);
  EXPECT_FALSE(exists);
}

TEST(LogicalNode, AddBitRecodesWithPdepSemantics) {
  LogicalNode ln = Fig5Node();
  // Add bit 7 (paper §4.4's example): rank 3, between bits 6 and 8.
  AddBitAtRank(ln, 3, 7);
  EXPECT_EQ(ln.num_bits, 6u);
  uint16_t expect_bits[] = {3, 4, 6, 7, 8, 9};
  for (int i = 0; i < 6; ++i) EXPECT_EQ(ln.bits[i], expect_bits[i]);
  // A zero is inserted at the new rank 3 (old ranks 3,4 shift to 4,5).
  uint32_t expect_sparse6[] = {0b000000, 0b010000, 0b011000, 0b100000,
                               0b100001, 0b100010, 0b100011};
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(ln.sparse[i], expect_sparse6[i] << 26) << "entry " << i;
  }
}

TEST(LogicalNode, AffectedRangeAroundCandidate) {
  LogicalNode ln = Fig5Node();
  // Mismatch at rank 2 (bit 6) with candidate 4 (sparse 10001): prefix is
  // ranks {0,1} = "10", shared by entries 3..6.
  AffectedRange r = FindAffectedRange(ln, 4, 2);
  EXPECT_EQ(r.first, 3u);
  EXPECT_EQ(r.last, 6u);
  // Mismatch at rank 0: every entry shares the empty prefix.
  r = FindAffectedRange(ln, 2, 0);
  EXPECT_EQ(r.first, 0u);
  EXPECT_EQ(r.last, 6u);
  // Mismatch below every bit of entry 6's path.
  r = FindAffectedRange(ln, 6, 5);
  EXPECT_EQ(r.first, 6u);
  EXPECT_EQ(r.last, 6u);
  // Candidate 1 (01000) at rank 2: prefix "01" shared by entries 1,2.
  r = FindAffectedRange(ln, 1, 2);
  EXPECT_EQ(r.first, 1u);
  EXPECT_EQ(r.last, 2u);
}

TEST(LogicalNode, InsertWithNewBitOneSide) {
  LogicalNode ln = Fig5Node();
  // New key diverges from entry 4's subtree at new bit 7 with key bit 1:
  // it lands after the affected range [3,6].
  unsigned pos = LogicalInsert(ln, 4, 7, 1, HotEntry::MakeTid(999));
  EXPECT_EQ(ln.count, 8u);
  EXPECT_EQ(ln.num_bits, 6u);
  EXPECT_EQ(pos, 7u);
  EXPECT_EQ(ln.entries[7], HotEntry::MakeTid(999));
  // New sparse key: candidate's prefix above rank 3 (100) plus the rank-3
  // bit -> 100100.
  EXPECT_EQ(ln.sparse[7], 0b100100u << 26);
  // Strictly increasing overall.
  for (unsigned i = 1; i < ln.count; ++i) {
    EXPECT_GT(ln.sparse[i], ln.sparse[i - 1]);
  }
}

TEST(LogicalNode, InsertWithNewBitZeroSide) {
  LogicalNode ln = Fig5Node();
  // Same divergence but the new key's bit is 0: affected entries [3,6]
  // move to the 1-side of the new BiNode.
  unsigned pos = LogicalInsert(ln, 4, 7, 0, HotEntry::MakeTid(999));
  EXPECT_EQ(pos, 3u);
  EXPECT_EQ(ln.entries[3], HotEntry::MakeTid(999));
  EXPECT_EQ(ln.sparse[3], 0b100000u << 26);   // prefix only
  EXPECT_EQ(ln.sparse[4], 0b100100u << 26);   // was 100000 -> rank-3 set
  EXPECT_EQ(ln.sparse[5], 0b100101u << 26);   // was 100001
  EXPECT_EQ(ln.sparse[6], 0b100110u << 26);   // was 100010
  EXPECT_EQ(ln.sparse[7], 0b100111u << 26);   // was 100011
  for (unsigned i = 1; i < ln.count; ++i) {
    EXPECT_GT(ln.sparse[i], ln.sparse[i - 1]);
  }
}

TEST(LogicalNode, InsertExistingBit) {
  LogicalNode ln = Fig5Node();
  // Diverge from entry 1's subtree (sparse 01000, path bits {3,4}) at the
  // *existing* bit 8 (rank 3, used by another subtree), key bit 1.
  // Affected = entries with prefix "010" at ranks {0,1,2}: entry 1 only.
  unsigned pos = LogicalInsert(ln, 1, 8, 1, HotEntry::MakeTid(500));
  EXPECT_EQ(ln.num_bits, 5u);  // no recode needed
  EXPECT_EQ(ln.count, 8u);
  EXPECT_EQ(pos, 2u);
  EXPECT_EQ(ln.sparse[2], 0b01010u << 27);
  for (unsigned i = 1; i < ln.count; ++i) {
    EXPECT_GT(ln.sparse[i], ln.sparse[i - 1]);
  }
}

TEST(LogicalNode, SplitSeversRootBiNode) {
  LogicalNode ln = Fig5Node();
  SplitResult s = Split(ln);
  EXPECT_EQ(s.bit_pos, 3u);
  // 0-side: entries 0..2 (rank-0 bit clear), 1-side: 3..6.
  ASSERT_EQ(s.left.count, 3u);
  ASSERT_EQ(s.right.count, 4u);
  EXPECT_EQ(s.left.entries[0], HotEntry::MakeTid(100));
  EXPECT_EQ(s.right.entries[0], HotEntry::MakeTid(103));
  // Left sparse keys {00000,01000,01100}: union&~inter keeps ranks {1,2}
  // = bits {4,6}.
  EXPECT_EQ(s.left.num_bits, 2u);
  EXPECT_EQ(s.left.bits[0], 4u);
  EXPECT_EQ(s.left.bits[1], 6u);
  EXPECT_EQ(s.left.sparse[0], 0u);
  EXPECT_EQ(s.left.sparse[1], 0b10u << 30);
  EXPECT_EQ(s.left.sparse[2], 0b11u << 30);
  // Right sparse keys {10000,10001,10010,10011}: the severed rank-0 bit is
  // common to all and dropped; ranks {3,4} = bits {8,9} remain.
  EXPECT_EQ(s.right.num_bits, 2u);
  EXPECT_EQ(s.right.bits[0], 8u);
  EXPECT_EQ(s.right.bits[1], 9u);
  EXPECT_EQ(s.right.sparse[0], 0b00u << 30);
  EXPECT_EQ(s.right.sparse[1], 0b01u << 30);
  EXPECT_EQ(s.right.sparse[2], 0b10u << 30);
  EXPECT_EQ(s.right.sparse[3], 0b11u << 30);
}

TEST(LogicalNode, SplitSingleEntrySide) {
  LogicalNode ln;
  ln.height = 2;
  ln.count = 3;
  ln.num_bits = 2;
  ln.bits[0] = 1;
  ln.bits[1] = 5;
  ln.sparse[0] = 0;
  ln.sparse[1] = LogicalNode::RankBit(0);
  ln.sparse[2] = LogicalNode::RankBit(0) | LogicalNode::RankBit(1);
  for (int i = 0; i < 3; ++i) ln.entries[i] = HotEntry::MakeTid(i);
  SplitResult s = Split(ln);
  EXPECT_EQ(s.left.count, 1u);
  EXPECT_EQ(s.left.num_bits, 0u);
  EXPECT_EQ(s.right.count, 2u);
  EXPECT_EQ(s.right.num_bits, 1u);
  EXPECT_EQ(s.right.bits[0], 5u);
  // Halves recompute their exact heights: all-tid halves have height 1.
  EXPECT_EQ(s.left.height, 1u);
  EXPECT_EQ(s.right.height, 1u);
}

TEST(LogicalNode, ReplaceEntryWithTwoAddsPulledUpBit) {
  LogicalNode ln = Fig5Node();
  // Pull a BiNode at bit 20 (below every path bit) up into slot 6.
  ReplaceEntryWithTwo(ln, 6, 20, HotEntry::MakeTid(600),
                      HotEntry::MakeTid(601));
  EXPECT_EQ(ln.count, 8u);
  EXPECT_EQ(ln.num_bits, 6u);
  EXPECT_EQ(ln.bits[5], 20u);
  EXPECT_EQ(ln.entries[6], HotEntry::MakeTid(600));
  EXPECT_EQ(ln.entries[7], HotEntry::MakeTid(601));
  EXPECT_EQ(ln.sparse[7], ln.sparse[6] | LogicalNode::RankBit(5));
  for (unsigned i = 1; i < ln.count; ++i) {
    EXPECT_GT(ln.sparse[i], ln.sparse[i - 1]);
  }
}

TEST(LogicalNode, RemoveEntryDropsUnusedBits) {
  LogicalNode ln = Fig5Node();
  // Rank 4 (bit 9) is used by entries 4 (10001) and 6 (10011).  Removing
  // entry 4 keeps it alive through entry 6...
  RemoveEntry(ln, 4);
  EXPECT_EQ(ln.count, 6u);
  EXPECT_EQ(ln.num_bits, 5u);
  // ...removing 10011 too (now index 5) makes bit 9 unused and dropped.
  RemoveEntry(ln, 5);
  EXPECT_EQ(ln.count, 5u);
  EXPECT_EQ(ln.num_bits, 4u);
  uint16_t expect_bits[] = {3, 4, 6, 8};
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ln.bits[i], expect_bits[i]);
}

TEST(LogicalNode, RemoveToSingleEntry) {
  LogicalNode ln = MakeTwoEntryNode(5, HotEntry::MakeTid(1),
                                    HotEntry::MakeTid(2), 1);
  EXPECT_EQ(ln.count, 2u);
  RemoveEntry(ln, 0);
  EXPECT_EQ(ln.count, 1u);
  EXPECT_EQ(ln.num_bits, 0u);
  EXPECT_EQ(ln.entries[0], HotEntry::MakeTid(2));
}

TEST(LogicalNode, MakeTwoEntryNode) {
  LogicalNode ln = MakeTwoEntryNode(12, HotEntry::MakeTid(7),
                                    HotEntry::MakeTid(9), 3);
  EXPECT_EQ(ln.height, 3u);
  EXPECT_EQ(ln.count, 2u);
  EXPECT_EQ(ln.num_bits, 1u);
  EXPECT_EQ(ln.bits[0], 12u);
  EXPECT_EQ(ln.sparse[0], 0u);
  EXPECT_EQ(ln.sparse[1], 0x80000000u);
}

}  // namespace
}  // namespace hot
