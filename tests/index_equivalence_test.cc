// Cross-index equivalence (ISSUE satellite): the competitor indexes — ART,
// Masstree, B+-tree — must agree with HOT and with the Patricia oracle on
// lower_bound answers and full ordered-scan output, over both integer and
// string key spaces.  Two angles:
//
//   * a direct pairwise check: the same key set loaded into all indexes,
//     then probed with member keys, absent keys, and prefix probes, through
//     the same adapter layer the differential executor uses
//   * trace replays with a lower_bound/scan-heavy op mix, so the agreement
//     also holds under interleaved inserts and deletes

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "art/art.h"
#include "btree/btree.h"
#include "common/extractors.h"
#include "common/key.h"
#include "common/rng.h"
#include "hot/trie.h"
#include "masstree/masstree.h"
#include "patricia/patricia.h"
#include "testing/adapters.h"
#include "testing/differ.h"
#include "testing/keyspace.h"
#include "testing/trace.h"

namespace hot {
namespace testing {
namespace {

// Loads every other key of `ks` into each index, then compares lower_bound
// and bounded scans for a probe set that includes members, the skipped
// keys, and synthetic out-of-range probes.
template <typename Extractor>
void PairwiseCheck(const KeySpace& ks, const Extractor& extractor) {
  HotTrie<Extractor> hot{extractor};
  ArtTree<Extractor> art{extractor};
  Masstree<Extractor> mass{extractor};
  BTree<Extractor> btree{extractor};
  PatriciaTrie<Extractor> oracle{extractor};
  for (uint32_t i = 0; i < ks.size(); i += 2) {
    uint64_t v = ks.ValueOf(i);
    ASSERT_TRUE(hot.Insert(v));
    ASSERT_TRUE(art.Insert(v));
    ASSERT_TRUE(mass.Insert(v));
    ASSERT_TRUE(btree.Insert(v));
    ASSERT_TRUE(oracle.Insert(v));
  }

  auto check_probe = [&](KeyRef probe, const std::string& what) {
    std::optional<uint64_t> want;
    oracle.ScanFrom(probe, [&](uint64_t v) {
      want = v;
      return false;
    });
    EXPECT_EQ(IndexLowerBound(hot, probe), want) << "hot: " << what;
    EXPECT_EQ(IndexLowerBound(art, probe), want) << "art: " << what;
    EXPECT_EQ(IndexLowerBound(mass, probe), want) << "masstree: " << what;
    EXPECT_EQ(IndexLowerBound(btree, probe), want) << "btree: " << what;

    std::vector<uint64_t> oracle_scan;
    oracle.ScanFrom(probe, [&](uint64_t v) {
      oracle_scan.push_back(v);
      return oracle_scan.size() < 10;
    });
    auto scan_of = [&](auto& index) {
      std::vector<uint64_t> out;
      index.ScanFrom(probe, 10, [&](uint64_t v) { out.push_back(v); });
      return out;
    };
    EXPECT_EQ(scan_of(hot), oracle_scan) << "hot: " << what;
    EXPECT_EQ(scan_of(art), oracle_scan) << "art: " << what;
    EXPECT_EQ(scan_of(mass), oracle_scan) << "masstree: " << what;
    EXPECT_EQ(scan_of(btree), oracle_scan) << "btree: " << what;
  };

  for (uint32_t i = 0; i < ks.size(); ++i) {
    KeyScratch scratch;
    KeyRef probe = extractor(ks.ValueOf(i), scratch);
    check_probe(probe, "key " + std::to_string(i));
  }
  // Before-everything and after-everything probes.
  check_probe(KeyRef(), "empty probe");

  // Full ordered output, all four indexes against the oracle.
  std::vector<uint64_t> want;
  oracle.ScanFrom(KeyRef(), [&](uint64_t v) {
    want.push_back(v);
    return true;
  });
  auto full_scan = [&](auto& index) {
    std::vector<uint64_t> out;
    index.ScanFrom(KeyRef(), want.size() + 1,
                   [&](uint64_t v) { out.push_back(v); });
    return out;
  };
  EXPECT_EQ(full_scan(hot), want);
  EXPECT_EQ(full_scan(art), want);
  EXPECT_EQ(full_scan(mass), want);
  EXPECT_EQ(full_scan(btree), want);
}

TEST(IndexEquivalence, PairwiseIntegerKeys) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kUniform, 1500, 17);
  PairwiseCheck(ks, U64KeyExtractor());
}

TEST(IndexEquivalence, PairwiseDenseIntegerKeys) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kDense, 1500, 18);
  PairwiseCheck(ks, U64KeyExtractor());
}

TEST(IndexEquivalence, PairwiseUrlKeys) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kUrl, 1200, 19);
  PairwiseCheck(ks, StringTableExtractor(&ks.strings));
}

TEST(IndexEquivalence, PairwisePrefixHeavyKeys) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kPrefix, 1200, 20);
  PairwiseCheck(ks, StringTableExtractor(&ks.strings));
}

// Trace replays with the mix tilted toward ordered operations, so the
// equivalence also holds mid-churn (inserts and deletes interleaved with
// the probes).
TEST(IndexEquivalence, OrderedOpsUnderChurn) {
  static const KeySpaceKind kKinds[] = {
      KeySpaceKind::kUniform, KeySpaceKind::kPrefix, KeySpaceKind::kEmail,
      KeySpaceKind::kInteger};
  static const char* const kIndexes[] = {"art", "masstree", "btree"};
  for (KeySpaceKind kind : kKinds) {
    TraceGenConfig cfg;
    cfg.kind = kind;
    cfg.n = 1024;
    cfg.seed = 4242 + static_cast<uint64_t>(kind);
    cfg.num_ops = 12000;
    cfg.audit_every = 2000;
    cfg.w_insert = 20;
    cfg.w_upsert = 5;
    cfg.w_remove = 15;
    cfg.w_lookup = 10;
    cfg.w_lower_bound = 25;
    cfg.w_scan = 25;
    Trace t = GenerateTrace(cfg);
    for (const char* index : kIndexes) {
      DiffResult res = RunTraceOnIndex(index, t);
      EXPECT_TRUE(res.ok) << index << " on " << KeySpaceKindName(kind) << ": "
                          << res.Describe();
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace hot
