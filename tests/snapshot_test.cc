// Snapshot tier (persist/snapshot.h): property round-trip across ALL TEN
// trace keyspace generators (testing/keyspace.h), each one written, mapped
// back, recovered through persist/recovery.h, bulk-built into a ROWEX HOT
// trie, deep-audited (testing/audit.h), and scan-diffed against the source
// map — so the on-disk image provably reconstructs byte-identical ordered
// contents for every key shape the fuzzer knows.  Plus writer-order
// enforcement, atomicity of the tmp->rename install, and corruption
// detection (header, block, truncation).

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "hot/rowex.h"
#include "net/record_store.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "testing/audit.h"
#include "testing/keyspace.h"

namespace hot {
namespace persist {
namespace {

using testing::BuildKeySpace;
using testing::KeySpace;
using testing::KeySpaceKind;
using testing::KeySpaceKindName;
using testing::kNumKeySpaceKinds;

KeyRef K(const std::string& s) {
  return KeyRef(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hot_snap_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    ::unlink(SnapshotPath(path).c_str());
    ::unlink(SnapshotTmpPath(path).c_str());
    ::rmdir(path.c_str());
  }
};

std::string KeyBytesOf(const KeySpace& ks, size_t idx) {
  if (ks.is_string) return ks.strings[idx];
  uint64_t v = ks.ints[idx];
  std::string k(8, '\0');
  for (int b = 0; b < 8; ++b) {
    k[b] = static_cast<char>(v >> (8 * (7 - b)));
  }
  return k;
}

// Ordered source-of-truth image of one keyspace.
std::map<std::string, uint64_t> ImageOf(const KeySpace& ks) {
  std::map<std::string, uint64_t> m;
  for (size_t i = 0; i < ks.size(); ++i) m[KeyBytesOf(ks, i)] = ks.ValueOf(i);
  return m;
}

TEST(Snapshot, RoundTripAuditAndScanParityAcrossAllKeyspaces) {
  for (unsigned k = 0; k < kNumKeySpaceKinds; ++k) {
    KeySpaceKind kind = static_cast<KeySpaceKind>(k);
    SCOPED_TRACE(KeySpaceKindName(kind));
    TempDir dir;
    KeySpace ks = BuildKeySpace(kind, 600, 77 + k);
    std::map<std::string, uint64_t> image = ImageOf(ks);

    // Write in ascending key order with a known LSN anchor.
    SnapshotWriter w;
    std::string err;
    ASSERT_TRUE(w.Open(SnapshotPath(dir.path), &err)) << err;
    for (const auto& [key, value] : image) {
      ASSERT_TRUE(w.Add(K(key), value));
    }
    ASSERT_TRUE(w.Finish(4242, &err)) << err;

    // Direct reader round-trip.
    SnapshotReader r;
    ASSERT_TRUE(r.Open(SnapshotPath(dir.path), &err)) << err;
    EXPECT_EQ(r.count(), image.size());
    EXPECT_EQ(r.last_lsn(), 4242u);
    auto it = image.begin();
    ASSERT_TRUE(r.ForEach(
        [&](KeyRef key, uint64_t value) {
          ASSERT_NE(it, image.end());
          EXPECT_EQ(std::string(reinterpret_cast<const char*>(key.data()),
                                key.size()),
                    it->first);
          EXPECT_EQ(value, it->second);
          ++it;
        },
        &err))
        << err;
    EXPECT_EQ(it, image.end());
    r.Close();

    // Recovery (snapshot-only directory) must reproduce the same image...
    RecoveryResult rec;
    ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;
    EXPECT_TRUE(rec.snapshot_loaded);
    EXPECT_EQ(rec.last_lsn, 4242u);
    ASSERT_EQ(rec.records.size(), image.size());

    // ...and bulk-build into a served trie that passes the deep audit and
    // scans back in byte-identical order.
    net::RecordStore store;
    std::vector<uint64_t> ids;
    ids.reserve(rec.records.size());
    for (const RecoveredRecord& rr : rec.records) {
      ASSERT_TRUE(net::KeyFitsIndex(rr.key_ref()));
      ids.push_back(store.Append(rr.key_ref(), rr.value));
    }
    RowexHotTrie<net::RecordKeyExtractor> trie{
        net::RecordKeyExtractor(&store)};
    trie.BulkLoad(ids.data(), ids.size(), 2);
    ASSERT_EQ(trie.size(), image.size());

    testing::AuditStats audit;
    ASSERT_TRUE(testing::AuditHotTree(trie.root_entry(),
                                      net::RecordKeyExtractor(&store),
                                      ids.size(), &audit, &err))
        << err;

    it = image.begin();
    size_t scanned = trie.ScanFrom(KeyRef(), image.size() + 1, [&](uint64_t id) {
      const net::RecordStore::Record& recd = store.At(id);
      ASSERT_NE(it, image.end());
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(
                                recd.raw_key().data()),
                            recd.raw_key().size()),
                it->first);
      EXPECT_EQ(recd.value, it->second);
      ++it;
    });
    EXPECT_EQ(scanned, image.size());
    EXPECT_EQ(it, image.end());
  }
}

TEST(Snapshot, WriterRejectsOutOfOrderKeys) {
  TempDir dir;
  SnapshotWriter w;
  std::string err;
  ASSERT_TRUE(w.Open(SnapshotPath(dir.path), &err)) << err;
  EXPECT_TRUE(w.Add(K("bbb"), 1));
  EXPECT_FALSE(w.Add(K("aaa"), 2));  // descending: poisoned
  EXPECT_FALSE(w.Add(K("bbb"), 3));  // equal is also illegal
  EXPECT_FALSE(w.Finish(1, &err));
  // The poisoned writer must not have installed anything.
  struct stat st;
  EXPECT_NE(::stat(SnapshotPath(dir.path).c_str(), &st), 0);
}

TEST(Snapshot, AbortLeavesNoInstalledImage) {
  TempDir dir;
  {
    SnapshotWriter w;
    std::string err;
    ASSERT_TRUE(w.Open(SnapshotPath(dir.path), &err)) << err;
    ASSERT_TRUE(w.Add(K("k"), 7));
    // destructor aborts: simulates a crash mid-scan
  }
  struct stat st;
  EXPECT_NE(::stat(SnapshotPath(dir.path).c_str(), &st), 0);
  // Recovery treats the directory as empty and clears the tmp file.
  RecoveryResult rec;
  std::string err;
  ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;
  EXPECT_FALSE(rec.snapshot_loaded);
  EXPECT_EQ(rec.records.size(), 0u);
  EXPECT_NE(::stat(SnapshotTmpPath(dir.path).c_str(), &st), 0);
}

TEST(Snapshot, EmptyImageRoundTrips) {
  TempDir dir;
  SnapshotWriter w;
  std::string err;
  ASSERT_TRUE(w.Open(SnapshotPath(dir.path), &err)) << err;
  ASSERT_TRUE(w.Finish(9, &err)) << err;
  SnapshotReader r;
  ASSERT_TRUE(r.Open(SnapshotPath(dir.path), &err)) << err;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.last_lsn(), 9u);
  size_t seen = 0;
  ASSERT_TRUE(r.ForEach([&](KeyRef, uint64_t) { ++seen; }, &err)) << err;
  EXPECT_EQ(seen, 0u);
}

TEST(Snapshot, CorruptionIsAnErrorNeverASilentSkip) {
  TempDir dir;
  SnapshotWriter w;
  std::string err;
  ASSERT_TRUE(w.Open(SnapshotPath(dir.path), &err)) << err;
  for (int i = 0; i < 500; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "key-%05d", i);
    ASSERT_TRUE(w.Add(K(key), i));
  }
  ASSERT_TRUE(w.Finish(1, &err)) << err;

  std::string path = SnapshotPath(dir.path);
  auto flip = [&](long at) {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, at, SEEK_SET);
    int b = std::fgetc(f);
    std::fseek(f, at, SEEK_SET);
    std::fputc(b ^ 0x01, f);
    std::fclose(f);
  };

  // Header corruption: Open fails.
  flip(20);
  SnapshotReader r1;
  EXPECT_FALSE(r1.Open(path, &err));
  flip(20);  // restore

  // Data corruption: Open succeeds (header fine), ForEach fails.
  flip(static_cast<long>(kSnapshotHeaderBytes) + 100);
  SnapshotReader r2;
  ASSERT_TRUE(r2.Open(path, &err)) << err;
  EXPECT_FALSE(r2.ForEach([](KeyRef, uint64_t) {}, &err));
  EXPECT_NE(err.find("CRC"), std::string::npos) << err;
  r2.Close();
  flip(static_cast<long>(kSnapshotHeaderBytes) + 100);  // restore

  // Truncation: size disagrees with the header.
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size - 1), 0);
  SnapshotReader r3;
  EXPECT_FALSE(r3.Open(path, &err));

  // And recovery refuses the directory rather than serving a partial base
  // image.
  RecoveryResult rec;
  EXPECT_FALSE(RecoverImage(dir.path, &rec, &err));
}

}  // namespace
}  // namespace persist
}  // namespace hot
