// B+-tree-specific tests: split/merge/borrow mechanics, height behaviour,
// the composite-key tie-breaking for long string keys sharing 8-byte
// prefixes, and leaf chaining for scans.

#include "btree/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"

namespace hot {
namespace {

using U64BTree = BTree<U64KeyExtractor>;

TEST(BTree, HeightGrowsLogarithmically) {
  U64BTree tree;
  EXPECT_EQ(tree.Height(), 0u);
  tree.Insert(1);
  EXPECT_EQ(tree.Height(), 1u);
  // 16 slots per leaf: 17 keys force the first split.
  for (uint64_t v = 2; v <= 17; ++v) tree.Insert(v);
  EXPECT_EQ(tree.Height(), 2u);
  for (uint64_t v = 18; v <= 100000; ++v) tree.Insert(v);
  // fanout 16, half-full worst case: height stays small.
  EXPECT_LE(tree.Height(), 6u);
  for (uint64_t v = 1; v <= 100000; ++v) {
    ASSERT_TRUE(tree.Lookup(U64Key(v).ref()).has_value()) << v;
  }
}

TEST(BTree, DeleteTriggersMergesDownToEmpty) {
  U64BTree tree;
  for (uint64_t v = 0; v < 50000; ++v) tree.Insert(v * 3);
  unsigned peak_height = tree.Height();
  SplitMix64 rng(3);
  std::vector<uint64_t> keys;
  for (uint64_t v = 0; v < 50000; ++v) keys.push_back(v * 3);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBounded(i)]);
  }
  for (uint64_t v : keys) ASSERT_TRUE(tree.Remove(U64Key(v).ref())) << v;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_LE(tree.Height(), peak_height);
  // Reusable afterwards.
  EXPECT_TRUE(tree.Insert(42));
  EXPECT_TRUE(tree.Lookup(U64Key(42).ref()).has_value());
}

TEST(BTree, SharedPrefixStringsTieBreakViaTid) {
  // Keys identical in their first 8 bytes: the composite word collides and
  // correctness rests on the tid-resolved comparison.
  std::vector<std::string> table;
  for (int i = 0; i < 2000; ++i) {
    table.push_back("sameprefix-" + std::to_string(i));
  }
  BTree<StringTableExtractor> tree{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(tree.Insert(i));
  for (size_t i = 0; i < table.size(); ++i) {
    auto got = tree.Lookup(TerminatedView(table[i]));
    ASSERT_TRUE(got.has_value()) << table[i];
    EXPECT_EQ(*got, i);
  }
  EXPECT_FALSE(tree.Lookup(TerminatedView(std::string("sameprefix-"))).has_value());
  // Duplicate insert must be rejected despite word collision.
  table.push_back(table[5]);
  EXPECT_FALSE(tree.Insert(table.size() - 1));
  table.pop_back();
  // Scans stay lexicographic ("sameprefix-10" < "sameprefix-2").
  std::vector<std::string> got;
  tree.ScanFrom(TerminatedView(std::string("sameprefix-1")), 5,
                [&](uint64_t tid) { got.push_back(table[tid]); });
  std::vector<std::string> sorted = table;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::string> want(
      sorted.begin() + (std::lower_bound(sorted.begin(), sorted.end(),
                                         "sameprefix-1") -
                        sorted.begin()),
      sorted.end());
  want.resize(5);
  EXPECT_EQ(got, want);
}

TEST(BTree, LeafChainScansCrossNodes) {
  U64BTree tree;
  for (uint64_t v = 0; v < 1000; ++v) tree.Insert(v);
  std::vector<uint64_t> got;
  tree.ScanFrom(U64Key(500).ref(), 300, [&](uint64_t v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 300u);
  for (size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], 500 + i);
}

TEST(BTree, MemoryConstantAcrossKeyTypes) {
  // The paper's observation: BT memory is the same for all data sets
  // because slots are fixed 16 bytes.
  MemoryCounter c1, c2;
  U64BTree ints{U64KeyExtractor(), &c1};
  std::vector<std::string> table;
  for (int i = 0; i < 20000; ++i) {
    table.push_back("http://very.long.url.example.org/with/many/segments/" +
                    std::to_string(i));
  }
  BTree<StringTableExtractor> strings{StringTableExtractor(&table), &c2};
  SplitMix64 rng(7);
  for (int i = 0; i < 20000; ++i) ints.Insert(rng.Next() >> 1);
  // Shuffle the string insert order so both trees see random arrival and
  // comparable leaf fill factors.
  std::vector<uint32_t> order(table.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  for (uint32_t i : order) strings.Insert(i);
  double ratio = static_cast<double>(c1.live_bytes()) /
                 static_cast<double>(c2.live_bytes());
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(BTree, DifferentialDenseChurn) {
  U64BTree tree;
  std::set<uint64_t> oracle;
  SplitMix64 rng(11);
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = rng.NextBounded(5000);
    switch (rng.NextBounded(3)) {
      case 0:
        ASSERT_EQ(tree.Insert(v), oracle.insert(v).second);
        break;
      case 1:
        ASSERT_EQ(tree.Lookup(U64Key(v).ref()).has_value(),
                  oracle.count(v) > 0);
        break;
      case 2:
        ASSERT_EQ(tree.Remove(U64Key(v).ref()), oracle.erase(v) > 0);
        break;
    }
  }
  EXPECT_EQ(tree.size(), oracle.size());
}

}  // namespace
}  // namespace hot
