// Unit tests for the counting allocator (Fig. 9 memory accounting substrate).

#include "common/alloc.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace hot {
namespace {

TEST(MemoryCounter, TracksLiveBytes) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  void* a = alloc.AllocateAligned(100, 32);
  EXPECT_EQ(counter.live_bytes(), 100u);
  void* b = alloc.AllocateAligned(28, 8);
  EXPECT_EQ(counter.live_bytes(), 128u);
  alloc.FreeAligned(a, 100, 32);
  EXPECT_EQ(counter.live_bytes(), 28u);
  alloc.FreeAligned(b, 28, 8);
  EXPECT_EQ(counter.live_bytes(), 0u);
  EXPECT_EQ(counter.total_allocs(), 2u);
  EXPECT_EQ(counter.total_frees(), 2u);
}

TEST(CountingAllocator, RespectsAlignment) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  std::vector<std::pair<void*, size_t>> ptrs;
  for (size_t align : {8u, 16u, 32u, 64u}) {
    for (int i = 0; i < 50; ++i) {
      void* p = alloc.AllocateAligned(1 + i * 7, align);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
      ptrs.push_back({p, 1 + i * 7});
      // The allocation must be writable over its whole extent.
      memset(p, 0xAB, 1 + i * 7);
    }
    for (auto [p, sz] : ptrs) alloc.FreeAligned(p, sz, align);
    ptrs.clear();
  }
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST(CountingAllocator, NullCounterWorks) {
  CountingAllocator alloc(nullptr);
  void* p = alloc.AllocateAligned(64, 32);
  ASSERT_NE(p, nullptr);
  alloc.FreeAligned(p, 64, 32);
}

TEST(MemoryCounter, Reset) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  void* p = alloc.AllocateAligned(10, 8);
  counter.Reset();
  EXPECT_EQ(counter.live_bytes(), 0u);
  alloc.FreeAligned(p, 10, 8);  // wraps below zero is fine after reset
}

}  // namespace
}  // namespace hot
