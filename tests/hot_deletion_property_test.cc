// Deletion-path property tests for HOT (ISSUE satellite): drive both trie
// variants through fill / half-delete / drain / re-fill / churn phases and
// run the deep structural audit (testing/audit.h: k-constraint,
// discriminative-bit ordering, sparse-partial-key round-trips, pointer-tag
// consistency, height bound) after every phase, with the membership and
// ordered-scan state diffed against an exact oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/rng.h"
#include "hot/rowex.h"
#include "hot/trie.h"
#include "testing/audit.h"
#include "testing/keyspace.h"

namespace hot {
namespace testing {
namespace {

// Audits structure + exact contents (membership and full ordered scan)
// against the oracle of currently-present keyspace indices.
template <typename Index, typename Extractor>
void AuditPhase(Index& index, const Extractor& extractor, const KeySpace& ks,
                const std::set<uint32_t>& present, const char* phase) {
  ASSERT_EQ(index.size(), present.size()) << phase;
  AuditStats stats;
  std::string err;
  ASSERT_TRUE(AuditHotTree(index.root_entry(), index.extractor(),
                           index.size(), &stats, &err))
      << phase << ": " << err;

  // Exact membership, both directions.
  for (uint32_t i = 0; i < ks.size(); ++i) {
    KeyScratch scratch;
    KeyRef key = extractor(ks.ValueOf(i), scratch);
    bool want = present.count(i) > 0;
    ASSERT_EQ(index.Lookup(key).has_value(), want)
        << phase << ": key " << i;
  }

  // Full ordered scan equals the present keys in key order.
  std::set<uint64_t> present_values;
  for (uint32_t i : present) present_values.insert(ks.ValueOf(i));
  std::vector<uint64_t> want;
  want.reserve(present.size());
  for (uint64_t v : ks.SortedValues()) {
    if (present_values.count(v) > 0) want.push_back(v);
  }
  std::vector<uint64_t> got;
  got.reserve(present.size());
  index.ScanFrom(KeyRef(), present.size() + 1,
                 [&](uint64_t v) { got.push_back(v); });
  ASSERT_EQ(got, want) << phase;
}

template <typename Index, typename Extractor>
void RunDeletionCycle(const KeySpace& ks, const Extractor& extractor,
                      uint64_t seed) {
  Index index{extractor};
  std::set<uint32_t> present;
  const uint32_t n = static_cast<uint32_t>(ks.size());

  auto insert = [&](uint32_t i) {
    bool want = present.insert(i).second;
    ASSERT_EQ(index.Insert(ks.ValueOf(i)), want) << "insert key " << i;
  };
  auto remove = [&](uint32_t i) {
    KeyScratch scratch;
    KeyRef key = extractor(ks.ValueOf(i), scratch);
    bool want = present.erase(i) > 0;
    ASSERT_EQ(index.Remove(key), want) << "remove key " << i;
  };

  // Phase 1: fill.
  for (uint32_t i = 0; i < n; ++i) insert(i);
  AuditPhase(index, extractor, ks, present, "fill");

  // Phase 2: delete a random half.
  SplitMix64 rng(seed);
  std::vector<uint32_t> order = RandomPermutation(n, rng);
  for (uint32_t i = 0; i < n / 2; ++i) remove(order[i]);
  AuditPhase(index, extractor, ks, present, "half-delete");

  // Phase 3: drain to empty (some removes repeat and must return false).
  for (uint32_t i = 0; i < n; ++i) remove(order[i]);
  ASSERT_TRUE(index.empty());
  AuditPhase(index, extractor, ks, present, "drained");

  // Phase 4: re-fill in a different order.
  std::vector<uint32_t> order2 = RandomPermutation(n, rng);
  for (uint32_t i = 0; i < n; ++i) insert(order2[i]);
  AuditPhase(index, extractor, ks, present, "re-fill");

  // Phase 5: churn — interleaved insert/delete bursts, audited per phase.
  for (unsigned phase = 0; phase < 6; ++phase) {
    for (unsigned op = 0; op < 500; ++op) {
      uint32_t i = static_cast<uint32_t>(rng.NextBounded(n));
      if (rng.NextBounded(2) == 0) {
        insert(i);
      } else {
        remove(i);
      }
    }
    AuditPhase(index, extractor, ks, present,
               ("churn-" + std::to_string(phase)).c_str());
  }
}

TEST(HotDeletionProperty, UniformIntegers) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kUniform, 1000, 51);
  RunDeletionCycle<HotTrie<U64KeyExtractor>>(ks, U64KeyExtractor(), 101);
}

TEST(HotDeletionProperty, DenseIntegers) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kDense, 1000, 52);
  RunDeletionCycle<HotTrie<U64KeyExtractor>>(ks, U64KeyExtractor(), 102);
}

TEST(HotDeletionProperty, AdversarialSpanKeys) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kAdvSingle, 800, 53);
  RunDeletionCycle<HotTrie<StringTableExtractor>>(
      ks, StringTableExtractor(&ks.strings), 103);
}

TEST(HotDeletionProperty, PrefixHeavyStrings) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kPrefix, 800, 54);
  RunDeletionCycle<HotTrie<StringTableExtractor>>(
      ks, StringTableExtractor(&ks.strings), 104);
}

TEST(HotDeletionProperty, RowexUniformIntegers) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kUniform, 1000, 55);
  RunDeletionCycle<RowexHotTrie<U64KeyExtractor>>(ks, U64KeyExtractor(), 105);
}

TEST(HotDeletionProperty, RowexAdversarialMultiMask) {
  KeySpace ks = BuildKeySpace(KeySpaceKind::kAdvMulti8, 800, 56);
  RunDeletionCycle<RowexHotTrie<StringTableExtractor>>(
      ks, StringTableExtractor(&ks.strings), 106);
}

}  // namespace
}  // namespace testing
}  // namespace hot
