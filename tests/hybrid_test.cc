// Tests for the hybrid static/delta index (hot/hybrid.h): delta-then-base
// lookup and merged-scan parity against oracles, tombstone semantics over a
// bulk-built base, the freeze → drain → rebuild → swap merge cycle
// (including parity probed in the mid-merge frozen state), automatic
// trigger behaviour, telemetry surfacing, and the differ integration that
// replays fuzz traces against the Patricia oracle.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/hybrid.h"
#include "obs/telemetry.h"
#include "testing/differ.h"
#include "testing/trace.h"

namespace hot {
namespace {

using Hybrid = HybridHotIndex<U64KeyExtractor>;
using Options = Hybrid::MergeOptions;

Options InlineOptions(size_t min_delta = 256) {
  Options o;
  o.min_delta = min_delta;
  o.ratio = 0.25;
  o.rebuild_threads = 2;
  o.background = false;
  return o;
}

std::vector<uint64_t> SortedRandom(size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::set<uint64_t> dedup;
  while (dedup.size() < n) dedup.insert(rng.Next() >> 1);
  return {dedup.begin(), dedup.end()};
}

// Full ordered scan of the index, for oracle comparison.
std::vector<uint64_t> FullScan(const Hybrid& idx) {
  std::vector<uint64_t> out;
  idx.ScanFrom(U64Key(0).ref(), idx.size() + 16,
               [&](uint64_t v) { out.push_back(v); });
  return out;
}

std::vector<uint64_t> OracleValues(const std::map<uint64_t, uint64_t>& m) {
  std::vector<uint64_t> out;
  out.reserve(m.size());
  for (const auto& [k, v] : m) out.push_back(v);
  return out;
}

TEST(Hybrid, BasicOpsAndScan) {
  Hybrid idx(U64KeyExtractor(), nullptr, InlineOptions(1 << 20));
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(idx.Insert(10));
  EXPECT_FALSE(idx.Insert(10));
  EXPECT_TRUE(idx.Insert(30));
  EXPECT_TRUE(idx.Insert(20));
  EXPECT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx.Lookup(U64Key(20).ref()), std::optional<uint64_t>(20));
  EXPECT_FALSE(idx.Lookup(U64Key(25).ref()).has_value());
  EXPECT_EQ(FullScan(idx), (std::vector<uint64_t>{10, 20, 30}));
  EXPECT_TRUE(idx.Remove(U64Key(20).ref()));
  EXPECT_FALSE(idx.Remove(U64Key(20).ref()));
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(FullScan(idx), (std::vector<uint64_t>{10, 30}));
  std::string err;
  EXPECT_TRUE(idx.CheckStructure(&err)) << err;
}

TEST(Hybrid, TombstonesOverBulkBuiltBase) {
  std::vector<uint64_t> values = SortedRandom(20000, 7);
  Hybrid idx(U64KeyExtractor(), nullptr, InlineOptions(1 << 20));
  idx.BulkLoad(values);
  EXPECT_EQ(idx.size(), values.size());
  auto s = idx.hybrid_stats();
  EXPECT_EQ(s.base_entries, values.size());
  EXPECT_EQ(s.delta_live + s.delta_dead, 0u);

  // Remove a base-resident key: the delta absorbs a tombstone.
  uint64_t victim = values[12345];
  EXPECT_TRUE(idx.Remove(U64Key(victim).ref()));
  EXPECT_FALSE(idx.Lookup(U64Key(victim).ref()).has_value());
  EXPECT_FALSE(idx.Remove(U64Key(victim).ref()));
  s = idx.hybrid_stats();
  EXPECT_EQ(s.delta_dead, 1u);
  EXPECT_EQ(s.base_entries, values.size());  // base untouched

  // The merged scan suppresses it.
  std::vector<uint64_t> around;
  idx.ScanFrom(U64Key(values[12344]).ref(), 3,
               [&](uint64_t v) { around.push_back(v); });
  ASSERT_EQ(around.size(), 3u);
  EXPECT_EQ(around[0], values[12344]);
  EXPECT_EQ(around[1], values[12346]);  // 12345 skipped
  EXPECT_EQ(around[2], values[12347]);

  // Re-insert revives it and clears the tombstone.
  EXPECT_TRUE(idx.Insert(victim));
  EXPECT_EQ(idx.Lookup(U64Key(victim).ref()), std::optional<uint64_t>(victim));
  s = idx.hybrid_stats();
  EXPECT_EQ(s.delta_dead, 0u);
  EXPECT_EQ(s.delta_live, 1u);
  EXPECT_EQ(idx.size(), values.size());
  std::string err;
  EXPECT_TRUE(idx.CheckStructure(&err)) << err;
}

TEST(Hybrid, MergeCycleDrainsDeltaIntoBase) {
  std::vector<uint64_t> values = SortedRandom(10000, 13);
  Hybrid idx(U64KeyExtractor(), nullptr, InlineOptions(1 << 20));
  idx.BulkLoad(values);
  std::map<uint64_t, uint64_t> oracle;
  for (uint64_t v : values) oracle[v] = v;

  SplitMix64 rng(29);
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = rng.Next() >> 1;
    EXPECT_EQ(idx.Insert(v), oracle.emplace(v, v).second);
    if (i % 3 == 0) {
      uint64_t r = values[rng.NextBounded(values.size())];
      EXPECT_EQ(idx.Remove(U64Key(r).ref()), oracle.erase(r) > 0);
    }
  }
  ASSERT_EQ(idx.size(), oracle.size());

  idx.ForceMerge();
  auto s = idx.hybrid_stats();
  EXPECT_EQ(s.merges, 1u);
  EXPECT_EQ(s.delta_live + s.delta_dead, 0u);
  EXPECT_EQ(s.frozen_entries, 0u);
  EXPECT_EQ(s.base_entries, oracle.size());
  EXPECT_EQ(s.last_rebuild_keys, oracle.size());
  EXPECT_GT(s.last_rebuild_ns, 0u);
  EXPECT_EQ(FullScan(idx), OracleValues(oracle));
  std::string err;
  EXPECT_TRUE(idx.CheckStructure(&err)) << err;
}

TEST(Hybrid, MidMergeSnapshotStaysConsistent) {
  // Freeze the delta and probe every read path while the frozen generation
  // is live — the state a background merge exposes to concurrent readers —
  // then mutate on top (new active generation) and complete the merge.
  std::vector<uint64_t> values = SortedRandom(5000, 17);
  Hybrid idx(U64KeyExtractor(), nullptr, InlineOptions(1 << 20));
  idx.BulkLoad(values);
  std::map<uint64_t, uint64_t> oracle;
  for (uint64_t v : values) oracle[v] = v;

  SplitMix64 rng(31);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Next() >> 1;
    idx.Insert(v);
    oracle.emplace(v, v);
    if (i % 4 == 0) {
      uint64_t r = values[rng.NextBounded(values.size())];
      EXPECT_EQ(idx.Remove(U64Key(r).ref()), oracle.erase(r) > 0);
    }
  }

  ASSERT_TRUE(idx.FreezeDelta());
  EXPECT_FALSE(idx.FreezeDelta());  // one frozen generation at a time
  auto s = idx.hybrid_stats();
  EXPECT_GT(s.frozen_entries, 0u);

  // Reads against the three-layer state.
  EXPECT_EQ(FullScan(idx), OracleValues(oracle));
  for (int i = 0; i < 200; ++i) {
    uint64_t probe = values[rng.NextBounded(values.size())];
    auto want = oracle.count(probe) ? std::optional<uint64_t>(probe)
                                    : std::nullopt;
    EXPECT_EQ(idx.Lookup(U64Key(probe).ref()), want);
  }
  std::string err;
  EXPECT_TRUE(idx.CheckStructure(&err)) << err;

  // Writes land in the fresh active generation on top of the frozen one,
  // including removes of frozen-resident and base-resident keys.
  for (int i = 0; i < 500; ++i) {
    uint64_t v = rng.Next() >> 1;
    EXPECT_EQ(idx.Insert(v), oracle.emplace(v, v).second);
    if (i % 4 == 1) {
      uint64_t r = values[rng.NextBounded(values.size())];
      EXPECT_EQ(idx.Remove(U64Key(r).ref()), oracle.erase(r) > 0);
    }
  }
  EXPECT_EQ(FullScan(idx), OracleValues(oracle));
  EXPECT_TRUE(idx.CheckStructure(&err)) << err;

  idx.CompleteMerge();
  s = idx.hybrid_stats();
  EXPECT_EQ(s.frozen_entries, 0u);
  EXPECT_EQ(s.merges, 1u);
  EXPECT_EQ(FullScan(idx), OracleValues(oracle));
  EXPECT_EQ(idx.size(), oracle.size());
  EXPECT_TRUE(idx.CheckStructure(&err)) << err;

  // A second full cycle folds the post-freeze writes in too.
  idx.ForceMerge();
  s = idx.hybrid_stats();
  EXPECT_EQ(s.merges, 2u);
  EXPECT_EQ(s.base_entries, oracle.size());
  EXPECT_EQ(FullScan(idx), OracleValues(oracle));
}

TEST(Hybrid, AutomaticTriggerKeepsDeltaBounded) {
  Hybrid idx(U64KeyExtractor(), nullptr, InlineOptions(/*min_delta=*/512));
  SplitMix64 rng(43);
  std::set<uint64_t> oracle;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Next() >> 1;
    ASSERT_EQ(idx.Insert(v), oracle.insert(v).second);
  }
  auto s = idx.hybrid_stats();
  EXPECT_GT(s.merges, 3u);  // several cycles fired along the way
  // Inline merges: the delta can never exceed the trigger by more than the
  // writes of one operation.
  EXPECT_LE(s.delta_live + s.delta_dead,
            std::max<uint64_t>(512, s.base_entries / 4) + 1);
  EXPECT_EQ(idx.size(), oracle.size());
  for (int i = 0; i < 500; ++i) {
    uint64_t probe = *std::next(oracle.begin(),
                                static_cast<long>(rng.NextBounded(100)));
    EXPECT_EQ(idx.Lookup(U64Key(probe).ref()),
              std::optional<uint64_t>(probe));
  }
}

TEST(Hybrid, TelemetryProbeSurfacesHybridStats) {
  Hybrid idx(U64KeyExtractor(), nullptr, InlineOptions(1 << 20));
  std::vector<uint64_t> values = SortedRandom(3000, 3);
  idx.BulkLoad(values);
  idx.Insert(1);
  idx.Remove(U64Key(values[7]).ref());
  obs::TelemetrySnapshot snap = obs::CollectTelemetry(idx);
  EXPECT_EQ(snap.hybrid_base_entries, values.size());
  EXPECT_EQ(snap.hybrid_delta_entries, 2u);  // one live + one tombstone
  EXPECT_EQ(snap.hybrid_merges, 0u);
  idx.ForceMerge();
  snap = obs::CollectTelemetry(idx);
  EXPECT_EQ(snap.hybrid_merges, 1u);
  EXPECT_EQ(snap.hybrid_delta_entries, 0u);
  EXPECT_EQ(snap.hybrid_base_entries, values.size());
  EXPECT_GT(snap.hybrid_last_rebuild_keys, 0u);
  EXPECT_NE(snap.Summary().find("hybrid_base"), std::string::npos);
  // The census walked all layers; after the merge it is just the base.
  EXPECT_GT(snap.census.nodes, 0u);
}

// Differential fuzzing: the hybrid index is a first-class differ arm.
// These traces cross several inline merge cycles (DifferHybrid's trigger is
// 512 delta entries) while the deep audits run CheckStructure and full-scan
// parity at every audit op.
TEST(Hybrid, DifferTraceParityInteger) {
  testing::TraceGenConfig cfg;
  cfg.kind = testing::KeySpaceKind::kUniform;
  cfg.n = 4096;
  cfg.seed = 99;
  cfg.num_ops = 30000;
  cfg.audit_every = 5000;
  testing::Trace trace = testing::GenerateTrace(cfg);
  testing::DiffResult res = testing::RunTraceOnIndex("hybrid", trace);
  EXPECT_TRUE(res.ok) << res.Describe();
}

TEST(Hybrid, DifferTraceParityStrings) {
  testing::TraceGenConfig cfg;
  cfg.kind = testing::KeySpaceKind::kUrl;
  cfg.n = 2048;
  cfg.seed = 7;
  cfg.num_ops = 20000;
  cfg.audit_every = 4000;
  cfg.zipf_pick = true;  // skewed picking reshapes the delta residency
  testing::Trace trace = testing::GenerateTrace(cfg);
  testing::DiffResult res = testing::RunTraceOnIndex("hybrid", trace);
  EXPECT_TRUE(res.ok) << res.Describe();
}

TEST(Hybrid, DifferKnowsHybridArm) {
  bool known = false;
  testing::Trace empty_trace;
  empty_trace.ks_n = 16;
  testing::RunTraceOnIndex("hybrid", empty_trace, {}, &known);
  EXPECT_TRUE(known);
  unsigned found = 0;
  for (unsigned i = 0; i < testing::kNumIndexes; ++i) {
    if (std::string(testing::kIndexNames[i]) == "hybrid") ++found;
  }
  EXPECT_EQ(found, 1u);
}

}  // namespace
}  // namespace hot
