// Iterator semantics: Begin/Last, forward and reverse traversal,
// LowerBound/UpperBound, and descending range scans — all against
// std::set oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/trie.h"

namespace hot {
namespace {

using U64Hot = HotTrie<U64KeyExtractor>;

class IteratorTest : public ::testing::Test {
 protected:
  void Fill(size_t n, uint64_t seed) {
    SplitMix64 rng(seed);
    while (oracle_.size() < n) {
      uint64_t v = rng.NextBounded(1u << 24);
      if (oracle_.insert(v).second) trie_.Insert(v);
    }
  }

  U64Hot trie_;
  std::set<uint64_t> oracle_;
};

TEST_F(IteratorTest, EmptyTrieIterators) {
  EXPECT_FALSE(trie_.Begin().valid());
  EXPECT_FALSE(trie_.Last().valid());
  EXPECT_FALSE(trie_.LowerBound(U64Key(0).ref()).valid());
  EXPECT_FALSE(trie_.UpperBound(U64Key(0).ref()).valid());
}

TEST_F(IteratorTest, SingleElement) {
  trie_.Insert(42);
  auto it = trie_.Begin();
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.value(), 42u);
  it.Next();
  EXPECT_FALSE(it.valid());
  it = trie_.Last();
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.value(), 42u);
  it.Prev();
  EXPECT_FALSE(it.valid());
}

TEST_F(IteratorTest, ForwardEqualsSortedOracle) {
  Fill(20000, 1);
  auto oit = oracle_.begin();
  for (auto it = trie_.Begin(); it.valid(); it.Next(), ++oit) {
    ASSERT_NE(oit, oracle_.end());
    EXPECT_EQ(it.value(), *oit);
  }
  EXPECT_EQ(oit, oracle_.end());
}

TEST_F(IteratorTest, ReverseEqualsReverseSortedOracle) {
  Fill(20000, 2);
  auto oit = oracle_.rbegin();
  for (auto it = trie_.Last(); it.valid(); it.Prev(), ++oit) {
    ASSERT_NE(oit, oracle_.rend());
    EXPECT_EQ(it.value(), *oit);
  }
  EXPECT_EQ(oit, oracle_.rend());
}

TEST_F(IteratorTest, PrevUndoesNext) {
  Fill(5000, 3);
  auto it = trie_.Begin();
  SplitMix64 rng(5);
  // Random walk: Next/Prev sequences stay consistent with a mirror index.
  std::vector<uint64_t> sorted(oracle_.begin(), oracle_.end());
  size_t pos = 0;
  for (int step = 0; step < 10000 && it.valid(); ++step) {
    ASSERT_EQ(it.value(), sorted[pos]);
    if (rng.NextBounded(2) == 0 && pos + 1 < sorted.size()) {
      it.Next();
      ++pos;
    } else if (pos > 0) {
      it.Prev();
      --pos;
    } else {
      it.Next();
      ++pos;
    }
  }
}

TEST_F(IteratorTest, UpperBoundMatchesOracle) {
  Fill(10000, 4);
  SplitMix64 rng(7);
  for (int probe = 0; probe < 2000; ++probe) {
    uint64_t start = rng.NextBounded(1u << 24);
    auto it = trie_.UpperBound(U64Key(start).ref());
    auto oit = oracle_.upper_bound(start);
    if (oit == oracle_.end()) {
      EXPECT_FALSE(it.valid()) << start;
    } else {
      ASSERT_TRUE(it.valid()) << start;
      EXPECT_EQ(it.value(), *oit) << start;
    }
  }
  // Probing exact members: upper bound is the successor.
  for (uint64_t v : {*oracle_.begin(), *oracle_.rbegin()}) {
    auto it = trie_.UpperBound(U64Key(v).ref());
    auto oit = oracle_.upper_bound(v);
    EXPECT_EQ(it.valid(), oit != oracle_.end());
    if (it.valid()) EXPECT_EQ(it.value(), *oit);
  }
}

TEST_F(IteratorTest, ReverseScanMatchesOracle) {
  Fill(10000, 8);
  SplitMix64 rng(9);
  for (int probe = 0; probe < 500; ++probe) {
    uint64_t start = rng.NextBounded(1u << 24);
    std::vector<uint64_t> got;
    trie_.ScanReverseFrom(U64Key(start).ref(), 50,
                          [&](uint64_t v) { got.push_back(v); });
    std::vector<uint64_t> want;
    for (auto oit = oracle_.upper_bound(start);
         oit != oracle_.begin() && want.size() < 50;) {
      --oit;
      want.push_back(*oit);
    }
    ASSERT_EQ(got, want) << "start=" << start;
  }
  // From beyond the maximum: descending from the maximum.
  std::vector<uint64_t> got;
  trie_.ScanReverseFrom(U64Key(~0ULL >> 1).ref(), 3,
                        [&](uint64_t v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], *oracle_.rbegin());
}

TEST_F(IteratorTest, EmptyTrieScansVisitNothing) {
  size_t visited = 0;
  EXPECT_EQ(trie_.ScanFrom(U64Key(0).ref(), 10, [&](uint64_t) { ++visited; }),
            0u);
  EXPECT_EQ(trie_.ScanReverseFrom(U64Key(~0ULL >> 1).ref(), 10,
                                  [&](uint64_t) { ++visited; }),
            0u);
  EXPECT_EQ(visited, 0u);
}

TEST_F(IteratorTest, LowerBoundPastLastAndBeforeFirst) {
  Fill(10000, 11);
  uint64_t lo = *oracle_.begin(), hi = *oracle_.rbegin();

  // Key strictly greater than every entry: no lower bound.
  EXPECT_FALSE(trie_.LowerBound(U64Key(hi + 1).ref()).valid());
  // Exactly the maximum: the maximum itself.
  auto at_max = trie_.LowerBound(U64Key(hi).ref());
  ASSERT_TRUE(at_max.valid());
  EXPECT_EQ(at_max.value(), hi);

  // Key strictly below every entry: the minimum (and only then, if lo > 0).
  if (lo > 0) {
    auto before = trie_.LowerBound(U64Key(lo - 1).ref());
    ASSERT_TRUE(before.valid());
    EXPECT_EQ(before.value(), lo);
  }
  auto at_zero = trie_.LowerBound(U64Key(0).ref());
  ASSERT_TRUE(at_zero.valid());
  EXPECT_EQ(at_zero.value(), lo);
}

TEST_F(IteratorTest, ScanEdgesPastLastAndBeforeFirst) {
  Fill(10000, 12);
  uint64_t lo = *oracle_.begin(), hi = *oracle_.rbegin();

  // Forward scan starting past the last entry: nothing.
  std::vector<uint64_t> got;
  EXPECT_EQ(trie_.ScanFrom(U64Key(hi + 1).ref(), 10,
                           [&](uint64_t v) { got.push_back(v); }),
            0u);
  EXPECT_TRUE(got.empty());

  // Forward scan from before the first entry: starts at the minimum.
  trie_.ScanFrom(U64Key(0).ref(), 3, [&](uint64_t v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], lo);

  // Reverse scan from below the minimum: nothing precedes it.
  got.clear();
  if (lo > 0) {
    EXPECT_EQ(trie_.ScanReverseFrom(U64Key(lo - 1).ref(), 10,
                                    [&](uint64_t v) { got.push_back(v); }),
              0u);
    EXPECT_TRUE(got.empty());
  }

  // Reverse scan from past the maximum: starts at the maximum.
  trie_.ScanReverseFrom(U64Key(hi + 1).ref(), 3,
                        [&](uint64_t v) { got.push_back(v); });
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], hi);
}

TEST_F(IteratorTest, StringReverseScans) {
  std::vector<std::string> table = {"apple", "banana", "cherry", "date",
                                    "elderberry", "fig", "grape"};
  HotTrie<StringTableExtractor> dict{StringTableExtractor(&table)};
  for (size_t i = 0; i < table.size(); ++i) dict.Insert(i);
  std::vector<std::string> got;
  dict.ScanReverseFrom(TerminatedView(std::string("dandelion")), 10,
                       [&](uint64_t tid) { got.push_back(table[tid]); });
  EXPECT_EQ(got, (std::vector<std::string>{"cherry", "banana", "apple"}));
}

}  // namespace
}  // namespace hot
