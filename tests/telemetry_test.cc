// obs/telemetry: the snapshot must be internally consistent — census
// identities that follow from the tree shape (every non-root node is
// referenced by exactly one parent entry), fill factors inside (0, 1],
// pool accounting covering every allocated node, and the epoch-reclamation
// chain cow_replacements >= nodes_retired >= nodes_reclaimed with the
// obsolete-node backlog draining to exactly zero after a quiesced
// CollectAll.  Counter-based assertions are gated on HOT_STATS.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/rowex.h"
#include "hot/trie.h"
#include "obs/stat_counter.h"

namespace hot {
namespace {

using TrieU64 = HotTrie<U64KeyExtractor>;
using RowexU64 = RowexHotTrie<U64KeyExtractor>;

// Shape identities that hold for any quiescent snapshot of a trie holding
// `entries` keys: N tid slots plus one parent slot per non-root node.
void CheckCensus(const obs::TelemetrySnapshot& s, size_t entries) {
  ASSERT_GT(s.census.nodes, 0u);
  EXPECT_EQ(s.census.total_entries, entries + s.census.nodes - 1);

  uint64_t nodes_by_type = 0;
  uint64_t entries_by_type = 0;
  for (size_t t = 0; t < kNumNodeTypes; ++t) {
    nodes_by_type += s.census.count_by_type[t];
    entries_by_type += s.census.entries_by_type[t];
    double ff = s.FillFactorOf(static_cast<NodeType>(t));
    EXPECT_GE(ff, 0.0);
    EXPECT_LE(ff, 1.0);
  }
  EXPECT_EQ(nodes_by_type, s.census.nodes);
  EXPECT_EQ(entries_by_type, s.census.total_entries);

  EXPECT_GT(s.FillFactor(), 0.0);
  EXPECT_LE(s.FillFactor(), 1.0);
}

TEST(Telemetry, HotTrieCensusAndPool) {
  TrieU64 trie;
  SplitMix64 rng(11);
  std::set<uint64_t> oracle;
  while (oracle.size() < 50000) {
    uint64_t v = rng.Next() >> 8;
    if (oracle.insert(v).second) trie.Insert(v);
  }

  obs::TelemetrySnapshot s = obs::CollectTelemetry(trie);
  CheckCensus(s, oracle.size());

  // Single-threaded trie: no ROWEX machinery, so those fields stay zero.
  EXPECT_EQ(s.writer_restarts, 0u);
  EXPECT_EQ(s.cow_replacements, 0u);
  EXPECT_EQ(s.nodes_retired, 0u);
  EXPECT_EQ(s.retire_backlog, 0u);

  if constexpr (obs::kStatsEnabled) {
    // Every live node came out of the pool, either from a free list or a
    // fresh arena carve — and growth reallocations mean strictly more
    // allocations than live nodes.
    EXPECT_GT(s.pool_hits + s.pool_carves, s.census.nodes);
    EXPECT_GT(s.pool_carves, 0u);
    EXPECT_GT(s.pool_hits, 0u);  // 50k inserts certainly recycle nodes
    // A steal is a flavor of free-list hit, never a separate allocation —
    // and a single-threaded run stays entirely within one stripe.
    EXPECT_LE(s.pool_steals, s.pool_hits);
    EXPECT_EQ(s.pool_steals, 0u);
  } else {
    EXPECT_EQ(s.pool_hits + s.pool_carves, 0u);
    EXPECT_EQ(s.pool_steals, 0u);
  }
}

TEST(Telemetry, SummaryMentionsEveryField) {
  TrieU64 trie;
  for (uint64_t v = 0; v < 100; ++v) trie.Insert(v);
  std::string s = obs::CollectTelemetry(trie).Summary();
  for (const char* field :
       {"restarts=", "cow=", "pushdowns=", "splices=", "retired=",
        "reclaimed=", "backlog=", "lag=", "pool_hits=", "pool_carves=",
        "pool_steals=", "nodes=", "fill="}) {
    EXPECT_NE(s.find(field), std::string::npos) << field << " in: " << s;
  }
}

// The ISSUE invariant chain, verified against a genuinely contended run:
// every retire is preceded by a COW-replacement count, every reclaim by a
// retire, and the backlog is exactly the difference — then drains to zero
// once the writers have quiesced and limbo is collected.
TEST(Telemetry, RowexInvariantChainUnderStress) {
  RowexU64 trie;
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kOps = 30000;
  constexpr uint64_t kKeySpace = 20000;  // overlapping: forces contention

  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trie, t] {
      SplitMix64 rng(7000 + t);
      for (uint64_t i = 0; i < kOps; ++i) {
        uint64_t v = rng.NextBounded(kKeySpace);
        switch (rng.NextBounded(4)) {
          case 0:
          case 1:
            trie.Insert(v);
            break;
          case 2:
            trie.Lookup(U64Key(v).ref());
            break;
          case 3:
            trie.Remove(U64Key(v).ref());
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Writers quiesced: the snapshot below is stable.

  obs::TelemetrySnapshot s = obs::CollectTelemetry(trie);
  size_t live = trie.size();
  ASSERT_GT(live, 0u);
  CheckCensus(s, live);

  if constexpr (obs::kStatsEnabled) {
    EXPECT_GT(s.cow_replacements, 0u);
    EXPECT_GE(s.cow_replacements, s.nodes_retired);
    EXPECT_GE(s.nodes_retired, s.nodes_reclaimed);
    EXPECT_EQ(s.retire_backlog, s.nodes_retired - s.nodes_reclaimed);
    // Lag is bounded by the epoch clock itself.
    EXPECT_LE(s.reclamation_lag, s.global_epoch);
  }

  // Drain limbo: with no writer in an epoch, everything must reclaim.
  trie.epochs()->CollectAll();
  obs::TelemetrySnapshot after = obs::CollectTelemetry(trie);
  EXPECT_EQ(after.retire_backlog, 0u);
  EXPECT_EQ(after.reclamation_lag, 0u);
  if constexpr (obs::kStatsEnabled) {
    EXPECT_EQ(after.nodes_reclaimed, after.nodes_retired);
    EXPECT_EQ(after.nodes_retired, s.nodes_retired);  // quiesced: no growth
  }

  // The census must be untouched by reclamation (limbo nodes were already
  // unreachable).
  EXPECT_EQ(after.census.nodes, s.census.nodes);
  EXPECT_EQ(after.census.total_entries, s.census.total_entries);
}

TEST(Telemetry, RowexSingleThreadedCountersMoveAsExpected) {
  RowexU64 trie;
  SplitMix64 rng(19);
  std::set<uint64_t> oracle;
  for (int i = 0; i < 40000; ++i) {
    uint64_t v = rng.NextBounded(15000);
    if (rng.NextBounded(3) == 0) {
      trie.Remove(U64Key(v).ref());
      oracle.erase(v);
    } else {
      trie.Insert(v);
      oracle.insert(v);
    }
  }

  obs::TelemetrySnapshot s = obs::CollectTelemetry(trie);
  CheckCensus(s, oracle.size());

  if constexpr (obs::kStatsEnabled) {
    // Uncontended: no validation restarts, but plenty of structural events.
    EXPECT_EQ(s.writer_restarts, 0u);
    EXPECT_GT(s.cow_replacements, 0u);
    EXPECT_GT(s.leaf_pushdowns, 0u);
    EXPECT_GT(s.fast_splices, 0u);
    EXPECT_GE(s.cow_replacements, s.nodes_retired);
    EXPECT_EQ(s.retire_backlog, s.nodes_retired - s.nodes_reclaimed);
  }
}

}  // namespace
}  // namespace hot
