// obs/histogram.h: bucket mapping, percentile accuracy against exactly
// sorted samples (uniform / Zipfian / bimodal), merge associativity,
// concurrent lock-free recording, and the HOT_STATS=OFF no-op guarantee
// (pinned at compile time against NullStatCounter — the exact type every
// StatCounter becomes under -DHOT_STATS=OFF).

#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "obs/stat_counter.h"

namespace hot {
namespace {

using obs::LatencyHistogram;

// --- compile-time no-op guarantee (HOT_STATS=OFF twin) ----------------------

static_assert(std::is_empty_v<obs::NullStatCounter>,
              "NullStatCounter must carry zero bytes");
constexpr uint64_t NullCounterAfterAdds = [] {
  obs::NullStatCounter c;
  c.Add();
  c.Add(1000);
  return c.value();
}();
static_assert(NullCounterAfterAdds == 0,
              "NullStatCounter::Add must compile to nothing");
static_assert(obs::kStatsEnabled
                  ? std::is_same_v<obs::StatCounter, obs::AtomicStatCounter>
                  : std::is_same_v<obs::StatCounter, obs::NullStatCounter>,
              "StatCounter alias must follow the HOT_STATS gate");

// --- bucket mapping ---------------------------------------------------------

TEST(Histogram, ExactBucketsBelow64) {
  for (uint64_t v = 0; v < 64; ++v) {
    size_t i = LatencyHistogram::BucketIndex(v);
    EXPECT_EQ(i, v);
    EXPECT_EQ(LatencyHistogram::BucketLow(i), v);
    EXPECT_EQ(LatencyHistogram::BucketWidth(i), 1u);
  }
}

TEST(Histogram, BucketContainsValueWithBoundedWidth) {
  SplitMix64 rng(1);
  for (int t = 0; t < 200000; ++t) {
    uint64_t v = rng.Next() >> (rng.NextBounded(64));
    size_t i = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(i, LatencyHistogram::kNumBuckets);
    uint64_t low = LatencyHistogram::BucketLow(i);
    uint64_t width = LatencyHistogram::BucketWidth(i);
    ASSERT_GE(v, low) << "value " << v << " below bucket " << i;
    ASSERT_LT(v - low, width) << "value " << v << " beyond bucket " << i;
    if (v >= 64) {
      // Log-bucketing: relative resolution 1/64 at every magnitude.
      ASSERT_LE(width, v / 64 + 1);
    }
  }
}

TEST(Histogram, TopBucketIsLast) {
  EXPECT_EQ(LatencyHistogram::BucketIndex(~0ULL),
            LatencyHistogram::kNumBuckets - 1);
}

// --- percentile accuracy ----------------------------------------------------

// The returned value is the midpoint of the bucket containing the exact
// order statistic, so it can differ from it by at most one bucket width:
// <= 1 below 64, <= value/64 + 1 above.
void CheckPercentiles(const std::vector<uint64_t>& samples) {
  LatencyHistogram h;
  for (uint64_t v : samples) h.Record(v);
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  ASSERT_EQ(h.count(), samples.size());
  EXPECT_EQ(h.max(), sorted.back());
  EXPECT_EQ(h.ValueAtPercentile(100), sorted.back());

  for (double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9}) {
    size_t rank = static_cast<size_t>(p / 100.0 *
                                      static_cast<double>(sorted.size()));
    if (rank < sorted.size()) ++rank;  // 1-based ceil, as the histogram
    uint64_t exact = sorted[rank - 1];
    uint64_t approx = h.ValueAtPercentile(p);
    uint64_t tol = exact / 64 + 1;
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(tol))
        << "p" << p << " of " << sorted.size() << " samples";
  }
}

TEST(Histogram, PercentilesUniform) {
  SplitMix64 rng(7);
  std::vector<uint64_t> s(100000);
  for (auto& v : s) v = 50 + rng.NextBounded(1000000);
  CheckPercentiles(s);
}

TEST(Histogram, PercentilesZipf) {
  // Zipfian ranks scaled into a latency-like range: a heavy head with a
  // long tail, the shape that breaks mean-based reporting.
  SplitMix64 rng(8);
  ZipfianGenerator zipf(1000000, 0.99, 9);
  std::vector<uint64_t> s(100000);
  for (auto& v : s) v = 100 + zipf.Next() * 3 + rng.NextBounded(7);
  CheckPercentiles(s);
}

TEST(Histogram, PercentilesBimodal) {
  // Cache-hit mode around 100ns, miss mode around 100us: percentile
  // extraction must resolve both modes and the jump between them.
  SplitMix64 rng(9);
  std::vector<uint64_t> s(100000);
  for (auto& v : s) {
    v = rng.NextBounded(10) < 9 ? 80 + rng.NextBounded(60)
                                : 90000 + rng.NextBounded(30000);
  }
  CheckPercentiles(s);
}

TEST(Histogram, EmptyAndSingle) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.ValueAtPercentile(50), 0u);
  h.Record(42);
  EXPECT_EQ(h.ValueAtPercentile(0), 42u);
  EXPECT_EQ(h.ValueAtPercentile(50), 42u);
  EXPECT_EQ(h.ValueAtPercentile(100), 42u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
}

// Regression: ValueAtPercentile on an empty histogram must return 0 for
// EVERY p — including the p >= 100 early-out and out-of-range p — and the
// cumulative bucket walk must never run with count() == 0 (it would walk
// all buckets and fall through to max()).  Callers used to be the only
// guard (RunObservers::ForEachHistogram skips empty histograms); the
// histogram itself now defines the behavior.
TEST(Histogram, EmptyPercentilesAreZeroForAllP) {
  LatencyHistogram h;
  for (double p : {0.0, 0.001, 25.0, 50.0, 99.0, 99.9, 100.0,
                   // out-of-range inputs are clamped, not UB
                   -5.0, 250.0}) {
    EXPECT_EQ(h.ValueAtPercentile(p), 0u) << "p=" << p;
  }
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);

  // Emptied-again histograms behave like never-filled ones.
  h.Record(7);
  h.Record(1u << 20);
  EXPECT_NE(h.ValueAtPercentile(50), 0u);
  h.Reset();
  for (double p : {0.0, 50.0, 99.9, 100.0}) {
    EXPECT_EQ(h.ValueAtPercentile(p), 0u) << "after Reset, p=" << p;
  }

  // Merging an empty histogram into an empty histogram stays empty.
  LatencyHistogram a, b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.ValueAtPercentile(99.9), 0u);
}

// --- merge ------------------------------------------------------------------

void FillRandom(LatencyHistogram& h, uint64_t seed, size_t n) {
  SplitMix64 rng(seed);
  for (size_t i = 0; i < n; ++i) h.Record(rng.Next() >> rng.NextBounded(60));
}

void ExpectSame(const LatencyHistogram& a, const LatencyHistogram& b) {
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(a.BucketCount(i), b.BucketCount(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
}

TEST(Histogram, MergeIsAssociativeAndCommutative) {
  // (a + b) + c == a + (b + c) == c + b + a, bucket for bucket.
  LatencyHistogram ab_c, a_bc, cba;
  // (a+b)+c
  {
    LatencyHistogram a, b, c;
    FillRandom(a, 1, 5000);
    FillRandom(b, 2, 3000);
    FillRandom(c, 3, 7000);
    ab_c.Merge(a);
    ab_c.Merge(b);
    ab_c.Merge(c);
  }
  // a+(b+c): merge b and c into one histogram first.
  {
    LatencyHistogram a, bc;
    FillRandom(a, 1, 5000);
    FillRandom(bc, 2, 3000);
    FillRandom(bc, 3, 7000);
    a_bc.Merge(bc);
    a_bc.Merge(a);
  }
  // reverse order
  {
    LatencyHistogram a, b, c;
    FillRandom(a, 1, 5000);
    FillRandom(b, 2, 3000);
    FillRandom(c, 3, 7000);
    cba.Merge(c);
    cba.Merge(b);
    cba.Merge(a);
  }
  ExpectSame(ab_c, a_bc);
  ExpectSame(ab_c, cba);
}

TEST(Histogram, MergeMatchesDirectRecording) {
  LatencyHistogram merged, direct;
  for (uint64_t t = 0; t < 4; ++t) {
    LatencyHistogram part;
    FillRandom(part, 100 + t, 10000);
    merged.Merge(part);
    FillRandom(direct, 100 + t, 10000);
  }
  ExpectSame(merged, direct);
}

// --- concurrency ------------------------------------------------------------

TEST(Histogram, ConcurrentRecordingLosesNothing) {
  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 200000;
  LatencyHistogram h;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      SplitMix64 rng(0xabc + t);
      for (size_t i = 0; i < kPerThread; ++i) {
        h.Record(1 + rng.NextBounded(1 << 20));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(h.count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    bucket_total += h.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);

  // Same data recorded single-threaded must agree exactly (relaxed atomics
  // lose no increments, merge-order-independent by construction).
  LatencyHistogram ref;
  for (size_t t = 0; t < kThreads; ++t) {
    SplitMix64 rng(0xabc + t);
    for (size_t i = 0; i < kPerThread; ++i) {
      ref.Record(1 + rng.NextBounded(1 << 20));
    }
  }
  ExpectSame(h, ref);
}

TEST(Histogram, RecordNMatchesLoop) {
  LatencyHistogram a, b;
  a.RecordN(777, 5);
  a.RecordN(65536, 3);
  for (int i = 0; i < 5; ++i) b.Record(777);
  for (int i = 0; i < 3; ++i) b.Record(65536);
  ExpectSame(a, b);
}

}  // namespace
}  // namespace hot
