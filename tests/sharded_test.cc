// ycsb/sharded.h: per-shard forwarding of the full point-op surface
// (insert / lookup / remove / upsert / size), thread-safety of the shard
// locks under concurrent writers, and the compile-time poisoning of range
// scans (hash sharding destroys key order, so ScanFrom must not exist).

#include "ycsb/sharded.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/rowex.h"
#include "hot/trie.h"

namespace hot {
namespace {

using ycsb::ShardedIndex;

using ShardedU64 = ShardedIndex<HotTrie<U64KeyExtractor>>;

// --- compile-time: scans must not exist on the sharded wrapper -------------

struct SinkFn {
  void operator()(uint64_t) const {}
};

template <typename Index>
concept SupportsScan = requires(const Index& idx, KeyRef k, SinkFn fn) {
  idx.ScanFrom(k, size_t{1}, fn);
};

static_assert(SupportsScan<HotTrie<U64KeyExtractor>>,
              "the underlying trie does support scans");
static_assert(SupportsScan<RowexHotTrie<U64KeyExtractor>>);
static_assert(!SupportsScan<ShardedU64>,
              "ShardedIndex must reject ScanFrom at compile time: hash "
              "sharding destroys key order");
static_assert(!SupportsScan<ShardedIndex<RowexHotTrie<U64KeyExtractor>>>);

// --- point-op forwarding ---------------------------------------------------

TEST(Sharded, DifferentialAgainstOracle) {
  ShardedU64 idx;
  std::set<uint64_t> oracle;
  SplitMix64 rng(31);
  for (int i = 0; i < 50000; ++i) {
    uint64_t v = rng.NextBounded(12000);
    U64Key k(v);  // named: KeyRef views the key object's bytes
    KeyRef key = k.ref();
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        ASSERT_EQ(idx.Insert(v, key), oracle.insert(v).second);
        break;
      case 2: {
        auto got = idx.Lookup(key);
        ASSERT_EQ(got.has_value(), oracle.count(v) > 0);
        if (got) {
          ASSERT_EQ(*got, v);
        }
        break;
      }
      case 3:
        ASSERT_EQ(idx.Remove(key), oracle.erase(v) > 0);
        break;
    }
    if (i % 1000 == 0) {
      ASSERT_EQ(idx.size(), oracle.size());
    }
  }
  ASSERT_EQ(idx.size(), oracle.size());
}

TEST(Sharded, UpsertReplacesAcrossShards) {
  // Tid table where tid i and tid i+N hold the same string key, so the
  // second upsert must return the first tid as the replaced value — and
  // must land on the same shard, since sharding hashes the key bytes.
  constexpr uint64_t kN = 2000;
  std::vector<std::string> table;
  for (uint64_t i = 0; i < 2 * kN; ++i) {
    table.push_back("key-" + std::to_string(i % kN));
  }
  StringTableExtractor extractor(&table);
  ShardedIndex<HotTrie<StringTableExtractor>> idx(extractor);

  for (uint64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(idx.Upsert(i, TerminatedView(table[i])), std::nullopt);
  }
  EXPECT_EQ(idx.size(), kN);
  for (uint64_t i = 0; i < kN; ++i) {
    auto old = idx.Upsert(kN + i, TerminatedView(table[i]));
    ASSERT_TRUE(old.has_value());
    EXPECT_EQ(*old, i);
  }
  EXPECT_EQ(idx.size(), kN);  // replaced, not duplicated
  for (uint64_t i = 0; i < kN; ++i) {
    auto got = idx.Lookup(TerminatedView(table[i]));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, kN + i);
  }
}

// --- concurrency ------------------------------------------------------------

TEST(Sharded, ConcurrentWritersDontLoseOperations) {
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPerThread = 10000;
  ShardedU64 idx;

  // Phase 1: disjoint inserts from all threads.
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t v = t * kPerThread + i;
        ASSERT_TRUE(idx.Insert(v, U64Key(v).ref()));
      }
    });
  }
  for (auto& th : threads) th.join();
  threads.clear();
  ASSERT_EQ(idx.size(), kThreads * kPerThread);

  // Phase 2: racing readers, removers of the odd half, and upserters.
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&idx, t] {
      SplitMix64 rng(99 + t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        uint64_t v = rng.NextBounded(kThreads * kPerThread);
        switch (t % 3) {
          case 0:
            idx.Lookup(U64Key(v).ref());
            break;
          case 1:
            if (v % 2 == 1) idx.Remove(U64Key(v).ref());
            break;
          case 2:
            if (v % 2 == 0) idx.Upsert(v, U64Key(v).ref());
            break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every even key survived (only odd keys were removed; upserts of even
  // keys are idempotent here).
  for (uint64_t v = 0; v < kThreads * kPerThread; v += 2) {
    auto got = idx.Lookup(U64Key(v).ref());
    ASSERT_TRUE(got.has_value()) << v;
    ASSERT_EQ(*got, v);
  }
}

}  // namespace
}  // namespace hot
