// obs/perf_counters: tick source monotonicity and calibration, CounterRegion
// nesting (inner deltas bounded by the enclosing region's), group-read
// consistency, and the forced rdtsc fallback via HOT_NO_PERF=1 — the mode CI
// containers exercise implicitly because they deny perf_event_open.  Every
// assertion here must hold whether or not the hardware path opened.

#include "obs/perf_counters.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace hot {
namespace {

using obs::CounterRegion;
using obs::CounterSample;
using obs::PerfCounterGroup;

// Something the optimizer cannot delete, so regions measure real work.
uint64_t Burn(uint64_t iters) {
  volatile uint64_t acc = 1;
  for (uint64_t i = 0; i < iters; ++i) acc = acc * 6364136223846793005ULL + i;
  return acc;
}

TEST(Ticks, MonotonicAndCalibrated) {
  uint64_t a = obs::ReadTicks();
  Burn(100000);
  uint64_t b = obs::ReadTicks();
  EXPECT_GT(b, a);

  double tps = obs::TicksPerSecond();
  // rdtsc on any plausible machine: 100 MHz .. 10 GHz.  The steady_clock
  // fallback ticks at exactly 1e9.
  EXPECT_GT(tps, 1e8);
  EXPECT_LT(tps, 1e11);

  EXPECT_DOUBLE_EQ(obs::TicksToNanos(0), 0.0);
  double ns = obs::TicksToNanos(b - a);
  EXPECT_GT(ns, 0.0);
  // 100k dependent multiplies take well under a second.
  EXPECT_LT(ns, 1e9);
}

TEST(PerfCounters, ReadIsMonotonicOnOwningThread) {
  PerfCounterGroup group;
  CounterSample prev = group.Read();
  for (int i = 0; i < 10; ++i) {
    Burn(10000);
    CounterSample cur = group.Read();
    EXPECT_GT(cur.ticks, prev.ticks);
    if (group.hw_available()) {
      EXPECT_TRUE(cur.hw_valid);
      // Counters only move forward; instructions must grow by at least the
      // loop body's worth of work.
      EXPECT_GE(cur.cycles, prev.cycles);
      EXPECT_GT(cur.instructions, prev.instructions);
      EXPECT_GE(cur.llc_misses, prev.llc_misses);
      EXPECT_GE(cur.branch_misses, prev.branch_misses);
      EXPECT_GE(cur.dtlb_misses, prev.dtlb_misses);
    } else {
      EXPECT_FALSE(cur.hw_valid);
      EXPECT_NE(group.fallback_reason()[0], '\0');
    }
    prev = cur;
  }
}

TEST(PerfCounters, RegionNestingIsBounded) {
  PerfCounterGroup group;
  CounterSample outer, inner;
  {
    CounterRegion outer_region(&group, &outer);
    Burn(20000);
    {
      CounterRegion inner_region(&group, &inner);
      Burn(20000);
    }
    Burn(20000);
  }
  EXPECT_GT(outer.ticks, 0u);
  EXPECT_GT(inner.ticks, 0u);
  // The inner region is a strict sub-window of the outer one: every delta it
  // observed is also part of the outer delta.
  EXPECT_GT(outer.ticks, inner.ticks);
  EXPECT_EQ(outer.hw_valid, group.hw_available());
  if (group.hw_available()) {
    EXPECT_GT(outer.cycles, inner.cycles);
    EXPECT_GT(outer.instructions, inner.instructions);
    EXPECT_GE(outer.llc_misses, inner.llc_misses);
    EXPECT_GE(outer.branch_misses, inner.branch_misses);
    EXPECT_GE(outer.dtlb_misses, inner.dtlb_misses);
  }
}

TEST(PerfCounters, StopReturnsSameDeltaAsOutParam) {
  PerfCounterGroup group;
  CounterSample via_out;
  CounterRegion region(&group, &via_out);
  Burn(5000);
  CounterSample via_stop = region.Stop();
  EXPECT_EQ(via_stop.ticks, via_out.ticks);
  EXPECT_EQ(via_stop.cycles, via_out.cycles);
  EXPECT_EQ(via_stop.instructions, via_out.instructions);
  EXPECT_EQ(via_stop.hw_valid, via_out.hw_valid);
}

TEST(PerfCounters, GroupReadIsConsistent) {
  // The whole point of PERF_FORMAT_GROUP: sibling counters cover the same
  // window as the leader.  IPC over a busy loop must come out in a sane
  // band — wildly inconsistent windows would push it to extremes.
  PerfCounterGroup group;
  if (!group.hw_available()) {
    GTEST_SKIP() << "hardware counters unavailable: "
                 << group.fallback_reason();
  }
  CounterSample d;
  {
    CounterRegion region(&group, &d);
    Burn(2000000);
  }
  ASSERT_TRUE(d.hw_valid);
  ASSERT_GT(d.cycles, 0u);
  double ipc = static_cast<double>(d.instructions) /
               static_cast<double>(d.cycles);
  EXPECT_GT(ipc, 0.05);
  EXPECT_LT(ipc, 16.0);
}

// Forced fallback: with HOT_NO_PERF=1 a fresh group must take the rdtsc
// path even on machines where perf_event_open works.  This is the exact
// configuration the CI observability job runs the benches under.
TEST(PerfCounters, EnvVarForcesFallback) {
  ASSERT_EQ(setenv("HOT_NO_PERF", "1", 1), 0);
  EXPECT_TRUE(PerfCounterGroup::DisabledByEnv());
  {
    PerfCounterGroup group;
    EXPECT_FALSE(group.hw_available());
    EXPECT_STRNE(group.fallback_reason(), "");

    // The fallback still measures time.
    CounterSample d;
    {
      CounterRegion region(&group, &d);
      Burn(10000);
    }
    EXPECT_FALSE(d.hw_valid);
    EXPECT_GT(d.ticks, 0u);
    EXPECT_EQ(d.cycles, 0u);
    EXPECT_EQ(d.instructions, 0u);
  }

  // "0" and unset both re-enable the hardware path.
  ASSERT_EQ(setenv("HOT_NO_PERF", "0", 1), 0);
  EXPECT_FALSE(PerfCounterGroup::DisabledByEnv());
  ASSERT_EQ(unsetenv("HOT_NO_PERF"), 0);
  EXPECT_FALSE(PerfCounterGroup::DisabledByEnv());
}

TEST(PerfCounters, SampleSubtraction) {
  CounterSample a, b;
  a.ticks = 100;
  a.cycles = 200;
  a.instructions = 300;
  a.hw_valid = true;
  b.ticks = 150;
  b.cycles = 260;
  b.instructions = 390;
  b.hw_valid = true;
  CounterSample d = b - a;
  EXPECT_EQ(d.ticks, 50u);
  EXPECT_EQ(d.cycles, 60u);
  EXPECT_EQ(d.instructions, 90u);
  EXPECT_TRUE(d.hw_valid);

  b.hw_valid = false;  // either endpoint invalid poisons the delta
  EXPECT_FALSE((b - a).hw_valid);
}

}  // namespace
}  // namespace hot
