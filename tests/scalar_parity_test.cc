// Differential parity tests between the hardware-intrinsic primitives and
// their scalar twins (common/bits.h, common/simd.h).
//
// In a default build on BMI2/AVX2 hardware the dispatchers (Pext64,
// FindByteMatches16, ...) compile to the intrinsics, so these tests compare
// hardware against the scalar reference.  In a -DHOT_FORCE_SCALAR=ON build
// the dispatchers ARE the scalar twins, so the same tests pin the scalar
// implementations against the independent references below.  CI runs both
// flavors.

#include <gtest/gtest.h>

#include <cstdint>

#include "common/bits.h"
#include "common/rng.h"
#include "common/simd.h"

namespace hot {
namespace {

// Independent bit-by-bit references (deliberately written differently from
// PextScalar/PdepScalar's lowest-set-bit loops).
uint64_t ReferencePext(uint64_t value, uint64_t mask) {
  uint64_t out = 0;
  unsigned k = 0;
  for (unsigned i = 0; i < 64; ++i) {
    if (mask & (1ULL << i)) {
      if (value & (1ULL << i)) out |= 1ULL << k;
      ++k;
    }
  }
  return out;
}

uint64_t ReferencePdep(uint64_t value, uint64_t mask) {
  uint64_t out = 0;
  unsigned k = 0;
  for (unsigned i = 0; i < 64; ++i) {
    if (mask & (1ULL << i)) {
      if (value & (1ULL << k)) out |= 1ULL << i;
      ++k;
    }
  }
  return out;
}

uint32_t ReferenceMatches16(const uint8_t bytes[16], uint8_t needle) {
  uint32_t mask = 0;
  for (int i = 15; i >= 0; --i) {
    mask = (mask << 1) | (bytes[i] == needle ? 1u : 0u);
  }
  return mask;
}

uint32_t ReferenceLess16(const uint8_t bytes[16], uint8_t needle) {
  uint32_t mask = 0;
  for (int i = 15; i >= 0; --i) {
    mask = (mask << 1) | (bytes[i] < needle ? 1u : 0u);
  }
  return mask;
}

TEST(ScalarParity, PextPdep64RandomPairs) {
  SplitMix64 rng(0xb175);
  for (int i = 0; i < 10000; ++i) {
    uint64_t value = rng.Next();
    uint64_t mask = rng.Next();
    // Bias some masks towards sparse/dense shapes like real disc-bit masks.
    if (i % 3 == 1) mask &= rng.Next();
    if (i % 3 == 2) mask |= rng.Next();
    ASSERT_EQ(Pext64(value, mask), ReferencePext(value, mask))
        << "value=" << value << " mask=" << mask;
    ASSERT_EQ(PextScalar(value, mask), ReferencePext(value, mask));
    ASSERT_EQ(Pdep64(value, mask), ReferencePdep(value, mask))
        << "value=" << value << " mask=" << mask;
    ASSERT_EQ(PdepScalar(value, mask), ReferencePdep(value, mask));
  }
}

TEST(ScalarParity, PextPdep64EdgeMasks) {
  SplitMix64 rng(0xeade);
  const uint64_t masks[] = {0,
                            ~0ULL,
                            1,
                            1ULL << 63,
                            0x5555555555555555ULL,
                            0xaaaaaaaaaaaaaaaaULL,
                            0x00000000ffffffffULL,
                            0xffffffff00000000ULL};
  for (uint64_t mask : masks) {
    for (int i = 0; i < 100; ++i) {
      uint64_t value = rng.Next();
      ASSERT_EQ(Pext64(value, mask), ReferencePext(value, mask));
      ASSERT_EQ(Pdep64(value, mask), ReferencePdep(value, mask));
    }
  }
}

TEST(ScalarParity, PextPdep32RandomPairs) {
  SplitMix64 rng(0x3232);
  for (int i = 0; i < 10000; ++i) {
    uint32_t value = static_cast<uint32_t>(rng.Next());
    uint32_t mask = static_cast<uint32_t>(rng.Next());
    ASSERT_EQ(Pext32(value, mask),
              static_cast<uint32_t>(ReferencePext(value, mask)));
    ASSERT_EQ(Pdep32(value, mask),
              static_cast<uint32_t>(ReferencePdep(value, mask)));
  }
}

TEST(ScalarParity, FindByteMatches16RandomArrays) {
  SplitMix64 rng(0x16161616);
  for (int i = 0; i < 10000; ++i) {
    uint8_t bytes[16];
    for (auto& b : bytes) {
      // Small alphabet so needles hit multiple positions often.
      b = static_cast<uint8_t>(rng.NextBounded(8) * 37);
    }
    uint8_t needle = static_cast<uint8_t>(rng.NextBounded(10) * 37);
    ASSERT_EQ(FindByteMatches16(bytes, needle),
              ReferenceMatches16(bytes, needle));
    ASSERT_EQ(FindByteLess16(bytes, needle), ReferenceLess16(bytes, needle));
  }
}

TEST(ScalarParity, FindByte16UnsignedBoundaries) {
  // The AVX2 less-than path emulates unsigned compare by sign-flipping; pin
  // the boundary values where a signed/unsigned mix-up would diverge.
  uint8_t bytes[16];
  for (int i = 0; i < 16; ++i) bytes[i] = static_cast<uint8_t>(i * 17);
  for (int needle : {0x00, 0x01, 0x7f, 0x80, 0x81, 0xfe, 0xff}) {
    uint8_t n = static_cast<uint8_t>(needle);
    EXPECT_EQ(FindByteLess16(bytes, n), ReferenceLess16(bytes, n)) << needle;
    EXPECT_EQ(FindByteMatches16(bytes, n), ReferenceMatches16(bytes, n))
        << needle;
  }
}

}  // namespace
}  // namespace hot
