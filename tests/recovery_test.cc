// Recovery tier (persist/recovery.h): RecoverImage over every directory
// shape the crash protocol can leave behind — empty dir, WAL-only, snapshot
// plus tail (with stale pre-prune records), deletes in the tail,
// last-writer-wins collapses, torn tails (legal only in the newest
// segment), and the WalResume handoff that lets the writer continue
// exactly where the recovered image ends.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace hot {
namespace persist {
namespace {

KeyRef K(const std::string& s) {
  return KeyRef(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hot_recovery_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    for (const auto& [seq, p] : ListWalSegments(path)) ::unlink(p.c_str());
    ::unlink(SnapshotPath(path).c_str());
    ::unlink(SnapshotTmpPath(path).c_str());
    ::rmdir(path.c_str());
  }
};

std::string Key(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%03d", i);
  return buf;
}

// Applies the recovered image into a plain map for oracle comparison.
std::map<std::string, uint64_t> AsMap(const RecoveryResult& rec) {
  std::map<std::string, uint64_t> m;
  for (const RecoveredRecord& r : rec.records) {
    // Recovered images are unique and ascending by contract; insert must
    // therefore never collide.
    auto [it, inserted] = m.emplace(r.key, r.value);
    EXPECT_TRUE(inserted) << "duplicate key in recovered image: " << r.key;
  }
  return m;
}

void ExpectAscending(const RecoveryResult& rec) {
  for (size_t i = 1; i < rec.records.size(); ++i) {
    EXPECT_LT(rec.records[i - 1].key_ref().Compare(rec.records[i].key_ref()),
              0)
        << "out of order at " << i;
  }
}

TEST(Recovery, EmptyDirectoryIsAValidEmptyImage) {
  TempDir dir;
  RecoveryResult rec;
  std::string err;
  ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;
  EXPECT_EQ(rec.records.size(), 0u);
  EXPECT_FALSE(rec.snapshot_loaded);
  EXPECT_FALSE(rec.torn_tail);
  EXPECT_EQ(rec.last_lsn, 0u);
  EXPECT_EQ(rec.resume.seq, 1u);
  EXPECT_EQ(rec.resume.next_lsn, 1u);
  EXPECT_FALSE(rec.resume.segment_exists);
}

TEST(Recovery, WalOnlyLastWriterWinsAndDeletesDrop) {
  TempDir dir;
  {
    Wal wal;
    std::string err;
    Wal::Options o;
    o.durability = Durability::kNone;
    ASSERT_TRUE(wal.Open(dir.path, WalResume{}, o, &err)) << err;
    for (int i = 0; i < 20; ++i) wal.Append(kWalPut, K(Key(i)), 100 + i);
    wal.Append(kWalPut, K(Key(3)), 999);    // overwrite
    wal.Append(kWalDelete, K(Key(7)), 0);   // drop
    wal.Append(kWalPut, K(Key(7)), 777);    // resurrect
    wal.Append(kWalDelete, K(Key(11)), 0);  // drop for good
    wal.Append(kWalPut, K("zzz"), 1);
    wal.Append(kWalDelete, K("zzz"), 0);    // insert+delete -> absent
    ASSERT_TRUE(wal.Flush(true, &err)) << err;
    wal.Close();
  }
  RecoveryResult rec;
  std::string err;
  ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;
  ExpectAscending(rec);
  EXPECT_FALSE(rec.snapshot_loaded);
  EXPECT_EQ(rec.wal_segments, 1u);
  EXPECT_EQ(rec.wal_records_applied, 26u);
  EXPECT_EQ(rec.wal_records_stale, 0u);
  EXPECT_EQ(rec.last_lsn, 26u);
  EXPECT_EQ(rec.resume.next_lsn, 27u);

  std::map<std::string, uint64_t> want;
  for (int i = 0; i < 20; ++i) want[Key(i)] = 100 + i;
  want[Key(3)] = 999;
  want[Key(7)] = 777;
  want.erase(Key(11));
  EXPECT_EQ(AsMap(rec), want);
}

TEST(Recovery, SnapshotPlusTailMergesAndSkipsStaleRecords) {
  TempDir dir;
  // Base image: k000..k049 = i, cut at LSN 100.
  {
    SnapshotWriter w;
    std::string err;
    ASSERT_TRUE(w.Open(SnapshotPath(dir.path), &err)) << err;
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(w.Add(K(Key(i)), i));
    ASSERT_TRUE(w.Finish(100, &err)) << err;
  }
  // One segment holding both stale (lsn <= 100, as after a crash between
  // snapshot rename and prune) and fresh records.
  {
    Wal wal;
    std::string err;
    Wal::Options o;
    o.durability = Durability::kNone;
    WalResume resume;
    resume.next_lsn = 95;
    ASSERT_TRUE(wal.Open(dir.path, resume, o, &err)) << err;
    for (int i = 0; i < 6; ++i) {
      wal.Append(kWalPut, K(Key(40 + i)), 5000 + i);  // lsn 95..100: stale
    }
    wal.Append(kWalPut, K(Key(10)), 999);   // lsn 101: overrides snapshot
    wal.Append(kWalDelete, K(Key(20)), 0);  // lsn 102: drops snapshot rec
    wal.Append(kWalPut, K("a-below"), 1);   // lsn 103: before the whole base
    wal.Append(kWalPut, K("zzz"), 2);       // lsn 104: after the whole base
    wal.Append(kWalPut, K(Key(10)), 1000);  // lsn 105: beats lsn 101
    ASSERT_TRUE(wal.Flush(true, &err)) << err;
    wal.Close();
  }
  RecoveryResult rec;
  std::string err;
  ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;
  ExpectAscending(rec);
  EXPECT_TRUE(rec.snapshot_loaded);
  EXPECT_EQ(rec.snapshot_records, 50u);
  EXPECT_EQ(rec.wal_records_stale, 6u);
  EXPECT_EQ(rec.wal_records_applied, 5u);
  EXPECT_EQ(rec.last_lsn, 105u);
  EXPECT_EQ(rec.resume.next_lsn, 106u);

  std::map<std::string, uint64_t> want;
  for (int i = 0; i < 50; ++i) want[Key(i)] = i;
  want[Key(10)] = 1000;
  want.erase(Key(20));
  want["a-below"] = 1;
  want["zzz"] = 2;
  EXPECT_EQ(AsMap(rec), want);
  EXPECT_EQ(rec.records.size(), want.size());
}

TEST(Recovery, TornTailIsLegalOnlyInTheNewestSegment) {
  TempDir dir;
  {
    Wal wal;
    std::string err;
    Wal::Options o;
    o.durability = Durability::kNone;
    ASSERT_TRUE(wal.Open(dir.path, WalResume{}, o, &err)) << err;
    for (int i = 0; i < 5; ++i) wal.Append(kWalPut, K(Key(i)), i);
    err.clear();
    wal.Rotate(&err);
    ASSERT_TRUE(err.empty()) << err;
    for (int i = 5; i < 8; ++i) wal.Append(kWalPut, K(Key(i)), i);
    ASSERT_TRUE(wal.Flush(true, &err)) << err;
    wal.Close();
  }
  auto segments = ListWalSegments(dir.path);
  ASSERT_EQ(segments.size(), 2u);
  // Each put frame here: 8B header + (8 lsn + 1 op + 4 klen + 4 key + 8
  // value) = 33 bytes.
  constexpr uint64_t kFrame = 33;

  // Torn tail in the NEWEST segment: recovery succeeds, frame dropped.
  struct stat st;
  ASSERT_EQ(::stat(segments[1].second.c_str(), &st), 0);
  off_t full = st.st_size;
  ASSERT_EQ(full, static_cast<off_t>(kWalFileHeaderBytes + 3 * kFrame));
  ASSERT_EQ(::truncate(segments[1].second.c_str(), full - 10), 0);
  RecoveryResult rec;
  std::string err;
  ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_EQ(rec.last_lsn, 7u);  // lsn 8 was torn away
  EXPECT_EQ(rec.records.size(), 7u);
  EXPECT_EQ(rec.resume.valid_end, kWalFileHeaderBytes + 2 * kFrame);

  // The same damage in a NON-tail segment is corruption.
  ASSERT_EQ(::stat(segments[0].second.c_str(), &st), 0);
  ASSERT_EQ(::truncate(segments[0].second.c_str(), st.st_size - 10), 0);
  EXPECT_FALSE(RecoverImage(dir.path, &rec, &err));
  EXPECT_NE(err.find("non-tail"), std::string::npos) << err;
}

TEST(Recovery, ResumeHandoffContinuesTheLog) {
  TempDir dir;
  {
    Wal wal;
    std::string err;
    Wal::Options o;
    o.durability = Durability::kNone;
    ASSERT_TRUE(wal.Open(dir.path, WalResume{}, o, &err)) << err;
    for (int i = 0; i < 10; ++i) wal.Append(kWalPut, K(Key(i)), i);
    ASSERT_TRUE(wal.Flush(true, &err)) << err;
    wal.Close();
  }
  // Tear the final frame, then recover + resume + append like a restarted
  // server would.
  auto segments = ListWalSegments(dir.path);
  ASSERT_EQ(segments.size(), 1u);
  struct stat st;
  ASSERT_EQ(::stat(segments[0].second.c_str(), &st), 0);
  ASSERT_EQ(::truncate(segments[0].second.c_str(), st.st_size - 1), 0);

  RecoveryResult rec;
  std::string err;
  ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_EQ(rec.last_lsn, 9u);
  EXPECT_EQ(rec.resume.next_lsn, 10u);
  EXPECT_TRUE(rec.resume.segment_exists);
  {
    Wal wal;
    Wal::Options o;
    o.durability = Durability::kNone;
    ASSERT_TRUE(wal.Open(dir.path, rec.resume, o, &err)) << err;
    EXPECT_EQ(wal.Append(kWalPut, K("resumed"), 42), 10u);
    ASSERT_TRUE(wal.Flush(true, &err)) << err;
    wal.Close();
  }
  RecoveryResult rec2;
  ASSERT_TRUE(RecoverImage(dir.path, &rec2, &err)) << err;
  EXPECT_FALSE(rec2.torn_tail);  // resume truncated the torn bytes
  EXPECT_EQ(rec2.last_lsn, 10u);
  std::map<std::string, uint64_t> want;
  for (int i = 0; i < 9; ++i) want[Key(i)] = i;  // Key(9) died in the tear
  want["resumed"] = 42;
  EXPECT_EQ(AsMap(rec2), want);
}

TEST(Recovery, ChecksumMatchesIndependentlyBuiltImage) {
  TempDir dir;
  {
    Wal wal;
    std::string err;
    Wal::Options o;
    o.durability = Durability::kNone;
    ASSERT_TRUE(wal.Open(dir.path, WalResume{}, o, &err)) << err;
    for (int i = 0; i < 100; ++i) wal.Append(kWalPut, K(Key(i)), i * 3);
    ASSERT_TRUE(wal.Flush(true, &err)) << err;
    wal.Close();
  }
  RecoveryResult rec;
  std::string err;
  ASSERT_TRUE(RecoverImage(dir.path, &rec, &err)) << err;

  std::vector<RecoveredRecord> oracle;
  for (int i = 0; i < 100; ++i) oracle.push_back({Key(i), uint64_t(i) * 3});
  EXPECT_EQ(ImageChecksum(rec.records), ImageChecksum(oracle));

  // The checksum is order- and content-sensitive.
  std::swap(oracle[0], oracle[1]);
  EXPECT_NE(ImageChecksum(rec.records), ImageChecksum(oracle));
}

}  // namespace
}  // namespace persist
}  // namespace hot
