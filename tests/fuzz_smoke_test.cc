// Fixed-seed differential fuzzing smoke tier (ISSUE tentpole check #4 /
// ctest label "fuzz-smoke").  Every index replays >= 1e6 mixed operations
// (insert/upsert/remove/lookup/lower_bound/scan/bulk-load) against the
// binary Patricia oracle, with the deep structural audit — full-scan diff,
// batched-descent cross-check, audit.h / CheckStructure, height
// differential — every 1e5 operations.  Seeds are fixed, so a failure here
// is a deterministic repro: the trace can be regenerated with fuzz_replay
// --record and shrunk with --shrink.
//
// HOT_SMOKE_OPS scales the per-index budget (default 1000000); sanitizer
// CI lanes inherit the default and stay within the ctest timeout.
//
// The ROWEX arm additionally runs a concurrent phase (1 writer, 2 readers)
// so the ThreadSanitizer lane observes real interleavings before the
// quiesced differential + structural audit.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/rng.h"
#include "hot/rowex.h"
#include "testing/audit.h"
#include "testing/differ.h"
#include "testing/trace.h"

namespace hot {
namespace testing {
namespace {

size_t SmokeOps() {
  if (const char* env = std::getenv("HOT_SMOKE_OPS")) {
    size_t v = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    if (v > 0) return v;
  }
  return 1000000;
}

// Splits the op budget over keyspace shapes that stress different layouts:
// sparse integers, shared prefixes, engineered multi-mask discriminative
// bits, and the paper's integer dataset.  `scan_heavy` swaps the default op
// mix for a YCSB-workload-E-shaped one (scans + lower_bounds dominate, the
// rest mostly inserts) — on the range-sharded arms this is what drives
// scans across splitter boundaries.
void RunSmoke(const char* index_name, bool scan_heavy = false) {
  static const KeySpaceKind kKinds[] = {
      KeySpaceKind::kUniform, KeySpaceKind::kPrefix, KeySpaceKind::kAdvMulti8,
      KeySpaceKind::kInteger};
  constexpr unsigned kNumKinds = 4;
  const size_t per_kind = (SmokeOps() + kNumKinds - 1) / kNumKinds;
  size_t executed = 0;
  for (unsigned k = 0; k < kNumKinds; ++k) {
    TraceGenConfig cfg;
    cfg.kind = kKinds[k];
    cfg.n = 4096;
    cfg.seed = 20260806 + 31 * k;
    cfg.num_ops = per_kind;
    cfg.audit_every = 100000;
    cfg.zipf_pick = (k % 2) == 1;
    if (scan_heavy) {
      cfg.w_scan = 40;
      cfg.w_lower_bound = 15;
      cfg.w_insert = 25;
      cfg.w_remove = 10;
      cfg.w_lookup = 7;
      cfg.w_upsert = 3;
    }
    Trace t = GenerateTrace(cfg);
    DiffResult res = RunTraceOnIndex(index_name, t);
    ASSERT_TRUE(res.ok) << index_name << " on "
                        << KeySpaceKindName(cfg.kind) << " seed " << cfg.seed
                        << ": " << res.Describe()
                        << "\nrepro: fuzz_replay --record t.trace --kind "
                        << KeySpaceKindName(cfg.kind) << " --n " << cfg.n
                        << " --seed " << cfg.seed << " --ops " << per_kind
                        << (cfg.zipf_pick ? " --zipf" : "")
                        << (scan_heavy ? " --mix scan-heavy" : "")
                        << " --audit-every 100000";
    executed += res.ops_executed;
  }
  EXPECT_GE(executed, SmokeOps());
}

TEST(FuzzSmoke, Hot) { RunSmoke("hot"); }
TEST(FuzzSmoke, Rowex) { RunSmoke("rowex"); }
TEST(FuzzSmoke, Art) { RunSmoke("art"); }
TEST(FuzzSmoke, Masstree) { RunSmoke("masstree"); }
TEST(FuzzSmoke, Btree) { RunSmoke("btree"); }

// Range-sharded wrappers (ycsb/range_sharded.h): same >= 1e6-op budget each.
// The scan-heavy mix forces cross-shard ScanFrom spillover — uniform byte
// splitters put the kUniform / kAdvMulti8 / kInteger keyspaces across many
// shards, while kPrefix collapses into one shard and exercises the
// single-shard fast path.
TEST(FuzzSmoke, HotRangeSharded) { RunSmoke("hot-rs"); }
TEST(FuzzSmoke, HotRangeShardedScanHeavy) { RunSmoke("hot-rs", true); }
TEST(FuzzSmoke, RowexRangeShardedScanHeavy) { RunSmoke("rowex-rs", true); }

// Concurrent ROWEX arm: one writer churns a fixed-seed key set while two
// readers probe and scan.  Readers check the invariants that hold mid-race
// (a hit returns the probed value; scans ascend); the quiesced end state is
// diffed against a replayed oracle and deep-audited.
TEST(FuzzSmoke, RowexConcurrentReaders) {
  const size_t kWriterOps = std::min<size_t>(SmokeOps() / 5, 200000);
  constexpr size_t kKeys = 8192;
  RowexHotTrie<U64KeyExtractor> trie{U64KeyExtractor()};
  std::atomic<bool> done{false};

  auto reader = [&](uint64_t seed) {
    SplitMix64 rng(seed);
    while (!done.load(std::memory_order_acquire)) {
      uint64_t probe = rng.NextBounded(kKeys) * 0x100003ULL;
      KeyBuffer kb = KeyBuffer::FromU64(probe);
      std::optional<uint64_t> hit = trie.Lookup(kb.ref());
      if (hit.has_value()) {
        // U64KeyExtractor keys are the value bytes: a hit must echo the
        // probed value exactly.
        ASSERT_EQ(*hit, probe);
      }
      uint64_t last = 0;
      bool first = true;
      trie.ScanFrom(kb.ref(), 32, [&](uint64_t v) {
        if (!first) {
          ASSERT_GT(v, last);
        }
        ASSERT_GE(v, probe);
        last = v;
        first = false;
      });
    }
  };

  std::thread r1(reader, 0xabc1);
  std::thread r2(reader, 0xabc2);
  SplitMix64 rng(0xfeed);
  for (size_t i = 0; i < kWriterOps; ++i) {
    uint64_t v = rng.NextBounded(kKeys) * 0x100003ULL;
    unsigned roll = static_cast<unsigned>(rng.NextBounded(4));
    if (roll < 3) {
      trie.Insert(v);
    } else {
      KeyBuffer kb = KeyBuffer::FromU64(v);
      trie.Remove(kb.ref());
    }
  }
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  // Quiesced: replay the writer sequence into an exact oracle.
  std::set<uint64_t> oracle;
  SplitMix64 replay(0xfeed);
  for (size_t i = 0; i < kWriterOps; ++i) {
    uint64_t v = replay.NextBounded(kKeys) * 0x100003ULL;
    unsigned roll = static_cast<unsigned>(replay.NextBounded(4));
    if (roll < 3) {
      oracle.insert(v);
    } else {
      oracle.erase(v);
    }
  }
  ASSERT_EQ(trie.size(), oracle.size());
  std::vector<uint64_t> got;
  got.reserve(oracle.size());
  trie.ScanFrom(KeyRef(), oracle.size() + 1,
                [&](uint64_t v) { got.push_back(v); });
  std::vector<uint64_t> want(oracle.begin(), oracle.end());
  ASSERT_EQ(got, want);
  AuditStats stats;
  std::string err;
  ASSERT_TRUE(AuditHotTree(trie.root_entry(), trie.extractor(), trie.size(),
                           &stats, &err))
      << err;
}

}  // namespace
}  // namespace testing
}  // namespace hot
