// SIMD/scalar equivalence sweep across all nine physical node layouts,
// using organically built nodes: keys are crafted so that a <=32-key trie
// collapses into a single node of the desired layout, then every kernel
// (extraction, comply, full search) is cross-checked between the AVX2/BMI2
// path, the scalar twin, and a brute-force key-comparison oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/node_search.h"
#include "hot/trie.h"

namespace hot {
namespace {

// Key recipes inducing specific layouts.  Each returns up to 32 distinct
// keys whose discriminative bits have the required spread.
struct LayoutRecipe {
  NodeType want;
  const char* name;
  // Generates the i-th key into buf (fixed 64 bytes), returns length.
  size_t (*make)(unsigned i, uint64_t salt, uint8_t* buf);
};

size_t DenseLowBytes(unsigned i, uint64_t salt, uint8_t* buf) {
  // All variation in bytes 0..3: single-mask layouts.
  std::memset(buf, 0, 8);
  StoreBigEndian64(buf, (static_cast<uint64_t>(i) * 0x9E3779B9u + salt)
                            << 32);
  return 8;
}

size_t SpreadBytes(unsigned i, uint64_t salt, uint8_t* buf, unsigned stride,
                   unsigned positions) {
  // One varying bit per distinct byte, bytes `stride` apart.
  std::memset(buf, 'x', 64);
  for (unsigned p = 0; p < positions; ++p) {
    unsigned bit = (i >> p) & 1;
    buf[p * stride] = static_cast<uint8_t>('a' + bit * 8 + (salt & 3));
  }
  return 64;
}

size_t Spread8(unsigned i, uint64_t salt, uint8_t* buf) {
  return SpreadBytes(i, salt, buf, 9, 5);  // 5 distinct bytes, 45-byte span
}
size_t Spread16(unsigned i, uint64_t salt, uint8_t* buf) {
  // >8 distinct bytes: one bit per byte needs >8 positions -> use pairs.
  std::memset(buf, 'x', 64);
  for (unsigned p = 0; p < 10; ++p) {
    unsigned bit = (i >> (p % 5)) & 1;
    buf[p * 6] = static_cast<uint8_t>('a' + ((bit + p + salt) & 1) * 4);
  }
  // Ensure uniqueness via a distinct tail in more distinct bytes.
  for (unsigned p = 0; p < 5; ++p) {
    buf[61 - p] = static_cast<uint8_t>('A' + ((i >> p) & 1));
  }
  return 64;
}
size_t Spread32(unsigned i, uint64_t salt, uint8_t* buf) {
  std::memset(buf, 'x', 64);
  (void)salt;
  // 20+ distinct bytes each carrying one informative bit.
  for (unsigned p = 0; p < 20; ++p) {
    buf[p * 3] = static_cast<uint8_t>('a' + ((i >> (p % 5)) & 1));
  }
  for (unsigned p = 0; p < 5; ++p) {
    buf[62 - p * 3] = static_cast<uint8_t>('A' + ((i >> p) & 1));
  }
  return 64;
}

class SimdSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdSweepTest, KernelsAgreeOnOrganicNodes) {
  int recipe_id = GetParam();
  SplitMix64 rng(1000 + recipe_id);
  for (int round = 0; round < 20; ++round) {
    uint64_t salt = rng.Next();
    // Build the key table.
    std::vector<std::string> table;
    std::set<std::string> dedup;
    for (unsigned i = 0; i < 32; ++i) {
      uint8_t buf[64];
      size_t len;
      switch (recipe_id) {
        case 0:
          len = DenseLowBytes(i, salt, buf);
          break;
        case 1:
          len = Spread8(i, salt, buf);
          break;
        case 2:
          len = Spread16(i, salt, buf);
          break;
        default:
          len = Spread32(i, salt, buf);
          break;
      }
      std::string s(reinterpret_cast<char*>(buf), len);
      if (dedup.insert(s).second) table.push_back(s);
    }
    ASSERT_GE(table.size(), 2u);

    HotTrie<StringTableExtractor> trie{StringTableExtractor(&table)};
    for (size_t i = 0; i < table.size(); ++i) ASSERT_TRUE(trie.Insert(i));
    std::string err;
    ASSERT_TRUE(trie.Validate(&err)) << err;

    // <=32 keys: the whole trie is one compound node.
    ASSERT_TRUE(HotEntry::IsNode(trie.root_entry()));
    NodeRef node = NodeRef::FromEntry(trie.root_entry());
    ASSERT_EQ(node.count(), table.size());

    // Cross-check kernels on member keys, perturbed keys and random keys.
    for (int probe = 0; probe < 200; ++probe) {
      std::string key = table[rng.NextBounded(table.size())];
      if (probe % 3 == 1) {
        key[rng.NextBounded(key.size())] ^=
            static_cast<char>(1u << rng.NextBounded(8));
      } else if (probe % 3 == 2) {
        for (auto& c : key) c = static_cast<char>(rng.Next());
      }
      KeyRef kref(reinterpret_cast<const uint8_t*>(key.data()),
                  key.size() + 1);
      uint32_t simd_dense = ExtractDensePartialKey(node, kref);
      uint32_t scalar_dense = ExtractDensePartialKeyScalar(node, kref);
      ASSERT_EQ(simd_dense, scalar_dense);
      ASSERT_EQ(ComplyMask(node, simd_dense) & node.UsedMask(),
                ComplyMaskScalar(node, simd_dense) & node.UsedMask());
      ASSERT_EQ(SearchNode(node, kref), SearchNodeScalar(node, kref));
    }

    // Member keys must route to themselves.
    for (size_t i = 0; i < table.size(); ++i) {
      unsigned idx = SearchNode(node, TerminatedView(table[i]));
      ASSERT_EQ(HotEntry::TidPayload(node.values()[idx]), i) << table[i];
    }
  }
}

std::string RecipeName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"single_mask", "multi8", "multi16",
                                       "multi32"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Recipes, SimdSweepTest, ::testing::Values(0, 1, 2, 3),
                         RecipeName);

// The layout chooser must produce each of the nine types for suitable bit
// sets (exhaustiveness guard against regressions in ChooseNodeType).
TEST(SimdSweep, AllNineLayoutsConstructible) {
  struct Case {
    NodeType want;
    std::vector<uint16_t> bits;
  };
  std::vector<Case> cases;
  cases.push_back({NodeType::kSingleMask8, {0, 1, 2}});
  {
    std::vector<uint16_t> b;
    for (int i = 0; i < 12; ++i) b.push_back(i * 5);
    cases.push_back({NodeType::kSingleMask16, b});
  }
  {
    std::vector<uint16_t> b;
    for (int i = 0; i < 20; ++i) b.push_back(i * 3);
    cases.push_back({NodeType::kSingleMask32, b});
  }
  cases.push_back({NodeType::kMultiMask8x8, {0, 100, 200}});
  {
    std::vector<uint16_t> b;
    for (int i = 0; i < 12; ++i) b.push_back((i / 2) * 100 + i % 2);
    cases.push_back({NodeType::kMultiMask8x16, b});
  }
  {
    std::vector<uint16_t> b;
    for (int i = 0; i < 20; ++i) b.push_back((i / 3) * 100 + i % 3);
    cases.push_back({NodeType::kMultiMask8x32, b});
  }
  {
    std::vector<uint16_t> b;
    for (int i = 0; i < 12; ++i) b.push_back(i * 100);
    cases.push_back({NodeType::kMultiMask16x16, b});
  }
  {
    std::vector<uint16_t> b;
    for (int i = 0; i < 26; ++i) b.push_back((i / 2) * 100 + i % 2);
    cases.push_back({NodeType::kMultiMask16x32, b});
  }
  {
    std::vector<uint16_t> b;
    for (int i = 0; i < 20; ++i) b.push_back(i * 100);
    cases.push_back({NodeType::kMultiMask32x32, b});
  }
  for (const auto& c : cases) {
    EXPECT_EQ(ChooseNodeType(c.bits.data(),
                             static_cast<unsigned>(c.bits.size())),
              c.want);
  }
}

}  // namespace
}  // namespace hot
