// Tests for the ROWEX-synchronized HOT trie (paper §5): single-threaded
// semantic equivalence with the unsynchronized trie, multi-threaded
// insert/lookup/remove mixes with full post-hoc verification, wait-free
// readers racing writers, and epoch-reclamation leak checks.

#include "hot/rowex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/trie.h"

namespace hot {
namespace {

using RowexU64 = RowexHotTrie<U64KeyExtractor>;

TEST(RowexHot, SingleThreadedBasics) {
  RowexU64 trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.Lookup(U64Key(1).ref()).has_value());
  EXPECT_TRUE(trie.Insert(42));
  EXPECT_FALSE(trie.Insert(42));
  EXPECT_EQ(trie.Lookup(U64Key(42).ref()).value(), 42u);
  EXPECT_TRUE(trie.Remove(U64Key(42).ref()));
  EXPECT_FALSE(trie.Remove(U64Key(42).ref()));
  EXPECT_TRUE(trie.empty());
}

TEST(RowexHot, SingleThreadedDifferential) {
  RowexU64 trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(17);
  for (int i = 0; i < 30000; ++i) {
    uint64_t v = rng.NextBounded(8000);
    switch (rng.NextBounded(4)) {
      case 0:
      case 1:
        ASSERT_EQ(trie.Insert(v), oracle.insert(v).second);
        break;
      case 2:
        ASSERT_EQ(trie.Lookup(U64Key(v).ref()).has_value(),
                  oracle.count(v) > 0);
        break;
      case 3:
        ASSERT_EQ(trie.Remove(U64Key(v).ref()), oracle.erase(v) > 0);
        break;
    }
    ASSERT_EQ(trie.size(), oracle.size());
  }
}

TEST(RowexHot, ScansMatchOracle) {
  RowexU64 trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(23);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.Next() >> 1;
    trie.Insert(v);
    oracle.insert(v);
  }
  for (int probe = 0; probe < 200; ++probe) {
    uint64_t start = rng.Next() >> 1;
    std::vector<uint64_t> got;
    trie.ScanFrom(U64Key(start).ref(), 50,
                  [&](uint64_t v) { got.push_back(v); });
    std::vector<uint64_t> want;
    for (auto it = oracle.lower_bound(start);
         it != oracle.end() && want.size() < 50; ++it) {
      want.push_back(*it);
    }
    ASSERT_EQ(got, want) << start;
  }
}

TEST(RowexHot, ConcurrentDisjointInserts) {
  constexpr unsigned kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  RowexU64 trie;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trie, t] {
      SplitMix64 rng(1000 + t);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Disjoint by construction: low bits carry the thread id.
        uint64_t v = ((rng.Next() >> 1) & ~0xFULL) | t;
        trie.Insert(v);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every inserted key must be findable.
  for (unsigned t = 0; t < kThreads; ++t) {
    SplitMix64 rng(1000 + t);
    for (uint64_t i = 0; i < kPerThread; ++i) {
      uint64_t v = ((rng.Next() >> 1) & ~0xFULL) | t;
      ASSERT_TRUE(trie.Lookup(U64Key(v).ref()).has_value()) << v;
    }
  }
}

TEST(RowexHot, ConcurrentContendedInserts) {
  // All threads insert from the same small key space: heavy lock conflicts
  // and duplicate races.  The final key set must be exactly the union.
  constexpr unsigned kThreads = 4;
  constexpr int kOps = 30000;
  RowexU64 trie;
  std::atomic<uint64_t> success_count{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(77 + t);
      uint64_t local = 0;
      for (int i = 0; i < kOps; ++i) {
        if (trie.Insert(rng.NextBounded(5000))) ++local;
      }
      success_count += local;
    });
  }
  for (auto& th : threads) th.join();
  // Exactly one success per distinct key.
  EXPECT_EQ(success_count.load(), trie.size());
  size_t present = 0;
  for (uint64_t v = 0; v < 5000; ++v) {
    if (trie.Lookup(U64Key(v).ref()).has_value()) ++present;
  }
  EXPECT_EQ(present, trie.size());
}

TEST(RowexHot, ReadersNeverBlockDuringWrites) {
  RowexU64 trie;
  for (uint64_t v = 0; v < 10000; ++v) trie.Insert(v * 16);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> read_errors{0};

  std::thread reader([&] {
    SplitMix64 rng(5);
    while (!stop) {
      uint64_t v = rng.NextBounded(10000) * 16;
      // Pre-loaded keys are never removed in this test: a miss is a bug.
      if (!trie.Lookup(U64Key(v).ref()).has_value()) ++read_errors;
      ++reads;
    }
  });
  std::thread scanner([&] {
    SplitMix64 rng(6);
    while (!stop) {
      uint64_t start = rng.NextBounded(10000) * 16;
      uint64_t prev = 0;
      bool first = true;
      trie.ScanFrom(U64Key(start).ref(), 20, [&](uint64_t v) {
        if (!first && v <= prev) ++read_errors;  // must stay sorted
        prev = v;
        first = false;
      });
    }
  });
  std::thread writer([&] {
    SplitMix64 rng(7);
    for (int i = 0; i < 50000; ++i) {
      uint64_t v = rng.Next() >> 1;
      if (v % 16 == 0) v += 1;  // stay off the pre-loaded lattice
      trie.Insert(v);
    }
    stop = true;
  });

  writer.join();
  reader.join();
  scanner.join();
  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_GT(reads.load(), 0u);
}

TEST(RowexHot, ConcurrentInsertRemoveMixWithReaders) {
  constexpr unsigned kThreads = 3;
  RowexU64 trie;
  // Pre-populate a stable core that is never removed.
  for (uint64_t v = 0; v < 5000; ++v) trie.Insert(v * 32 + 31);

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(900 + t);
      for (int i = 0; i < 20000; ++i) {
        // Thread-owned key space for insert/remove churn.
        uint64_t v = (rng.NextBounded(2000) << 6) | (t << 2);
        if (rng.NextBounded(2) == 0) {
          trie.Insert(v);
        } else {
          trie.Remove(U64Key(v).ref());
        }
      }
    });
  }
  // Wait-free readers race the delete-heavy churn: stable-core lookups must
  // always hit, and scans must stay sorted (they may surface churned keys).
  std::thread reader([&] {
    SplitMix64 rng(1);
    while (!stop) {
      uint64_t v = rng.NextBounded(5000) * 32 + 31;
      if (!trie.Lookup(U64Key(v).ref()).has_value()) ++reader_errors;
      uint64_t prev = 0;
      bool first = true;
      trie.ScanFrom(U64Key(v).ref(), 16, [&](uint64_t got) {
        if (!first && got <= prev) ++reader_errors;
        prev = got;
        first = false;
      });
    }
  });
  for (auto& th : threads) th.join();
  stop = true;
  reader.join();
  EXPECT_EQ(reader_errors.load(), 0);

  // The stable core must be intact.
  for (uint64_t v = 0; v < 5000; ++v) {
    ASSERT_TRUE(trie.Lookup(U64Key(v * 32 + 31).ref()).has_value()) << v;
  }
}

TEST(RowexHot, StringKeysConcurrent) {
  std::vector<std::string> table;
  SplitMix64 seed_rng(3);
  for (int i = 0; i < 40000; ++i) {
    table.push_back("user-" + std::to_string(seed_rng.Next() % 10000000) +
                    "@host" + std::to_string(i % 97) + ".example.org");
  }
  RowexHotTrie<StringTableExtractor> trie{StringTableExtractor(&table)};
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < table.size(); i += kThreads) {
        trie.Insert(i);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Duplicate strings may exist in the table; verify every string resolves.
  for (const auto& s : table) {
    ASSERT_TRUE(trie.Lookup(TerminatedView(s)).has_value()) << s;
  }
}

TEST(RowexHot, MemoryReclaimedAfterChurn) {
  MemoryCounter counter;
  {
    RowexU64 trie{U64KeyExtractor(), &counter};
    SplitMix64 rng(11);
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 5000; ++i) trie.Insert(rng.NextBounded(20000));
      for (int i = 0; i < 5000; ++i) {
        trie.Remove(U64Key(rng.NextBounded(20000)).ref());
      }
    }
    // Retired nodes are reclaimed once no epoch pins them.
    trie.epochs()->CollectAll();
    // live_bytes now reflects only reachable nodes; sanity: bounded by a
    // small multiple of the key count.
    EXPECT_LT(counter.live_bytes(), 20000u * 64u);
  }
}

TEST(RowexHot, AgreesWithSingleThreadedStructureSemantics) {
  // After a fully serialized (single-threaded) workload, the ROWEX trie
  // must contain exactly the same key set as the plain trie.
  RowexU64 rowex;
  HotTrie<U64KeyExtractor> plain;
  SplitMix64 rng(29);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.NextBounded(6000);
    bool op_insert = rng.NextBounded(3) != 0;
    if (op_insert) {
      ASSERT_EQ(rowex.Insert(v), plain.Insert(v));
    } else {
      ASSERT_EQ(rowex.Remove(U64Key(v).ref()), plain.Remove(U64Key(v).ref()));
    }
  }
  ASSERT_EQ(rowex.size(), plain.size());
  for (auto it = plain.Begin(); it.valid(); it.Next()) {
    ASSERT_TRUE(rowex.Lookup(U64Key(it.value()).ref()).has_value());
  }
}

}  // namespace
}  // namespace hot
