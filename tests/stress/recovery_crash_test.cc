// Crash-injection recovery harness (ISSUE: durability tentpole acceptance).
//
// Each round forks a REAL KvServer into a child process on a persistent
// data directory, drives a pipelined write burst over loopback, and
// SIGKILLs the child at a randomized point mid-burst — after `ack_target`
// replies have been read and with the rest still in flight.  The parent
// then recovers the directory out-of-process (persist/recovery.h) and
// checks the two durability invariants:
//
//   1. no acked write is lost (sync mode): the recovered image reflects at
//      least the first `acked` operations of the burst;
//   2. no un-acked write is half-applied: the image equals EXACTLY
//      baseline + ops[0..k) for a single k in [acked, sent] — writes on
//      one connection execute inline in order, so anything else means a
//      hole or reordering slipped through the WAL.
//
// The data dir persists across rounds (baseline = last verified image), so
// later rounds recover through snapshots taken by earlier incarnations —
// including incarnations killed mid-snapshot (tmp file) or between rename
// and prune (stale records).  A final in-process server restart checks the
// surviving image is actually servable, byte-for-byte, over a socket.
//
// HOT_CRASH_ROUNDS scales the sync-mode round count (default 50).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "persist/recovery.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace hot {
namespace net {
namespace {

KeyRef K(const std::string& s) { return KeyRef(s); }

unsigned EnvRounds(const char* name, unsigned fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return static_cast<unsigned>(std::strtoul(s, nullptr, 10));
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/hot_crash_test_XXXXXX";
    path = ::mkdtemp(tmpl);
  }
  ~TempDir() {
    for (const auto& [seq, p] : persist::ListWalSegments(path)) {
      ::unlink(p.c_str());
    }
    ::unlink(persist::SnapshotPath(path).c_str());
    ::unlink(persist::SnapshotTmpPath(path).c_str());
    ::rmdir(path.c_str());
  }
};

struct MutOp {
  bool is_put;
  std::string key;
  uint64_t value;
};

using Image = std::map<std::string, uint64_t>;

void Apply(Image* img, const MutOp& op) {
  if (op.is_put) {
    (*img)[op.key] = op.value;
  } else {
    img->erase(op.key);
  }
}

// True iff `got` == baseline + ops[0..k) for some k in [lo, hi]; reports
// the matching k.
bool MatchesSomePrefix(const Image& baseline, const std::vector<MutOp>& ops,
                       size_t lo, size_t hi, const Image& got, size_t* k_out) {
  Image cur = baseline;
  for (size_t i = 0; i < lo; ++i) Apply(&cur, ops[i]);
  for (size_t k = lo;; ++k) {
    if (cur == got) {
      *k_out = k;
      return true;
    }
    if (k == hi) return false;
    Apply(&cur, ops[k]);
  }
}

Image RecoverToImage(const std::string& dir) {
  persist::RecoveryResult rec;
  std::string err;
  EXPECT_TRUE(persist::RecoverImage(dir, &rec, &err)) << err;
  Image img;
  for (const persist::RecoveredRecord& r : rec.records) {
    img.emplace(r.key, r.value);
  }
  EXPECT_EQ(img.size(), rec.records.size());
  return img;
}

// Child body: serve `dir` until killed.  Never returns.
[[noreturn]] void ServeUntilKilled(const std::string& dir,
                                   persist::Durability durability,
                                   int port_fd) {
  ServerOptions opt;
  opt.workers = 1;
  opt.shards = 4;
  opt.data_dir = dir;
  opt.durability = durability;
  opt.wal_flush_ms = 2;  // tight async cadence: more fsync boundaries to
                         // land the SIGKILL between
  opt.snapshot_trigger_bytes = 32 * 1024;  // snapshots happen mid-run
  KvServer server(opt);
  std::string err;
  if (!server.Start(&err)) {
    std::fprintf(stderr, "child start failed: %s\n", err.c_str());
    ::_exit(3);
  }
  uint16_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) ::_exit(4);
  ::close(port_fd);
  for (;;) ::pause();  // SIGKILL is the only way out
}

// One fork / burst / kill / recover-verify round.  Updates *baseline to the
// verified post-crash image and returns the k the image matched at.
void CrashRound(const std::string& dir, persist::Durability durability,
                std::mt19937_64* rng, int key_pool, uint64_t round,
                Image* baseline, bool acked_must_survive) {
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipefd[0]);
    ServeUntilKilled(dir, durability, pipefd[1]);
  }
  ::close(pipefd[1]);
  uint16_t port = 0;
  ASSERT_EQ(::read(pipefd[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)))
      << "child failed to start (round " << round << ")";
  ::close(pipefd[0]);

  // Randomized burst: puts/deletes over a bounded key pool so overwrite
  // and delete-then-reinsert sequences are common.
  size_t sent = 100 + (*rng)() % 300;
  std::vector<MutOp> ops;
  ops.reserve(sent);
  for (size_t i = 0; i < sent; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "ck-%06llu",
                  static_cast<unsigned long long>((*rng)() % key_pool));
    bool is_put = ((*rng)() % 4) != 0;  // 25% deletes
    ops.push_back({is_put, key, (round << 32) | i});
  }
  size_t ack_target = (*rng)() % (sent + 1);

  KvClient c;
  std::string err;
  ASSERT_TRUE(c.Connect("127.0.0.1", port, &err)) << err;
  for (const MutOp& op : ops) {
    if (op.is_put) {
      c.SendPut(K(op.key), op.value);
    } else {
      c.SendDelete(K(op.key));
    }
  }
  ASSERT_TRUE(c.Flush(&err)) << err;
  Reply reply;
  for (size_t i = 0; i < ack_target; ++i) {
    ASSERT_TRUE(c.ReadReply(&reply, &err)) << err << " (ack " << i << ")";
    ASSERT_TRUE(reply.status == kOk || reply.status == kNotFound)
        << "write " << i << " rejected: " << reply.error;
  }

  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL);

  Image got = RecoverToImage(dir);
  size_t lo = acked_must_survive ? ack_target : 0;
  size_t k = 0;
  ASSERT_TRUE(MatchesSomePrefix(*baseline, ops, lo, sent, got, &k))
      << "round " << round << ": recovered image is not baseline + any "
      << "prefix of the burst in [" << lo << ", " << sent << "] (acked "
      << ack_target << ")";
  ASSERT_GE(k, lo) << "acked write lost";
  *baseline = got;
}

TEST(RecoveryCrash, SyncModeNeverLosesAnAckedWrite) {
  TempDir dir;
  unsigned rounds = EnvRounds("HOT_CRASH_ROUNDS", 50);
  std::mt19937_64 rng(20260809);
  Image baseline;
  for (unsigned r = 0; r < rounds; ++r) {
    SCOPED_TRACE("round " + std::to_string(r));
    CrashRound(dir.path, persist::Durability::kSync, &rng,
               /*key_pool=*/2000, r, &baseline,
               /*acked_must_survive=*/true);
    if (HasFatalFailure()) return;
  }

  // Servability: the final surviving image must come up in-process and
  // serve exactly what recovery promised.
  ServerOptions opt;
  opt.workers = 1;
  opt.shards = 4;
  opt.data_dir = dir.path;
  opt.durability = persist::Durability::kSync;
  KvServer server(opt);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;
  EXPECT_EQ(server.live_keys(), baseline.size());
  KvClient c;
  ASSERT_TRUE(c.Connect("127.0.0.1", server.port(), &err)) << err;
  Reply reply;
  ASSERT_TRUE(c.Scan(KeyRef(), 1u << 20, &reply, &err)) << err;
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.scan.size(), baseline.size());
  auto it = baseline.begin();
  for (size_t i = 0; i < reply.scan.size(); ++i, ++it) {
    EXPECT_EQ(reply.scan[i].key, it->first);
    EXPECT_EQ(reply.scan[i].value, it->second);
  }
  server.Stop();
}

// Async/none modes promise no ack durability, but the WAL must still never
// recover to anything but SOME clean prefix — no holes, no half-applied
// frames, no reordering.
TEST(RecoveryCrash, WeakerModesStillRecoverACleanPrefix) {
  for (persist::Durability mode :
       {persist::Durability::kAsync, persist::Durability::kNone}) {
    SCOPED_TRACE(persist::DurabilityName(mode));
    TempDir dir;
    unsigned rounds = std::max(1u, EnvRounds("HOT_CRASH_ROUNDS", 50) / 8);
    std::mt19937_64 rng(777 + static_cast<unsigned>(mode));
    Image baseline;
    for (unsigned r = 0; r < rounds; ++r) {
      SCOPED_TRACE("round " + std::to_string(r));
      CrashRound(dir.path, mode, &rng, /*key_pool=*/1000, r, &baseline,
                 /*acked_must_survive=*/false);
      if (HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace hot
