// Deterministic multi-threaded stress driver for the ROWEX-synchronized HOT
// trie (paper §5), sized so sanitizer builds (-DHOT_SANITIZE=thread|address)
// finish in CI time.
//
// Shape: rounds of N writer threads (insert/delete/upsert over Zipfian key
// ranks) racing M reader threads (lookups and ordered scans).  Writers own
// disjoint key spaces — id = (zipfian rank << 4) | thread — so each writer
// keeps an exact local oracle while the tree structure itself is fully
// shared and contended.  At the end of every round all threads join
// (a quiesce point) and the main thread checks the global invariants:
//   * structural validity via ValidateHotTree (hot/validate.h)
//   * size() equals the sum of the writer oracles
//   * every oracle entry is present with its exact last-written version
//   * every key a writer removed is absent
//
// Reader-side invariants (checked while racing writers): a lookup hit
// returns a value with the probed key, and ordered scans yield strictly
// ascending keys starting at or after the scan origin.
//
// HOT_STRESS_OPS overrides the per-writer per-round operation count
// (default 8000; 4 writers x 4 rounds x 8000 > 100k operations).

#include "hot/rowex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/rng.h"

namespace hot {
namespace {

// Value layout: [version:23][id:40], bit 63 clear.  The key is the id alone,
// so Upsert with a new version overwrites the stored value in place.
constexpr unsigned kIdBits = 40;
constexpr uint64_t kIdMask = (1ULL << kIdBits) - 1;

struct VersionedExtractor {
  KeyRef operator()(uint64_t value, KeyScratch& scratch) const {
    EncodeU64(value & kIdMask, scratch.bytes);
    return KeyRef(scratch.bytes, 8);
  }
};

using StressTrie = RowexHotTrie<VersionedExtractor>;

uint64_t MakeValue(uint64_t id, uint64_t version) {
  return ((version & ((1ULL << 22) - 1)) << kIdBits) | id;
}

size_t OpsPerRound() {
  const char* s = std::getenv("HOT_STRESS_OPS");
  if (s != nullptr) {
    unsigned long long v = std::strtoull(s, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 8000;
}

struct WriterState {
  std::unordered_map<uint64_t, uint64_t> live;  // id -> last value
  std::unordered_set<uint64_t> touched;         // every id ever used
  uint64_t version = 1;
};

TEST(RowexStress, WritersAndReadersWithQuiesceValidation) {
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 4;
  constexpr size_t kRounds = 4;
  constexpr uint64_t kRanksPerWriter = 4096;
  const size_t ops_per_round = OpsPerRound();

  StressTrie trie;
  std::vector<WriterState> states(kWriters);

  for (size_t round = 0; round < kRounds; ++round) {
    std::atomic<bool> stop_readers{false};

    std::vector<std::thread> readers;
    for (size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        SplitMix64 rng(0x9000 + round * 131 + r);
        ZipfianGenerator zipf(kRanksPerWriter, 0.99, 0x77 + r);
        while (!stop_readers.load(std::memory_order_acquire)) {
          uint64_t id = (zipf.Next() << 4) | rng.NextBounded(kWriters);
          if (rng.NextBounded(4) != 0) {
            auto hit = trie.Lookup(U64Key(id).ref());
            if (hit.has_value()) {
              EXPECT_EQ(*hit & kIdMask, id);
            }
          } else {
            uint64_t prev_id = 0;
            bool first = true;
            size_t n = trie.ScanFrom(U64Key(id).ref(), 32, [&](uint64_t v) {
              uint64_t got = v & kIdMask;
              if (first) {
                EXPECT_GE(got, id);
              } else {
                EXPECT_GT(got, prev_id);
              }
              prev_id = got;
              first = false;
            });
            EXPECT_LE(n, 32u);
          }
        }
      });
    }

    std::vector<std::thread> writers;
    for (size_t t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        WriterState& st = states[t];
        SplitMix64 rng(0x1000 + round * 17 + t);
        ZipfianGenerator zipf(kRanksPerWriter, 0.99, round * 31 + t + 1);
        for (size_t op = 0; op < ops_per_round; ++op) {
          uint64_t id = (zipf.Next() << 4) | t;
          st.touched.insert(id);
          uint64_t roll = rng.NextBounded(10);
          if (roll < 4) {  // insert
            uint64_t v = MakeValue(id, st.version++);
            bool inserted = trie.Insert(v);
            EXPECT_EQ(inserted, st.live.count(id) == 0)
                << "insert disagreed with oracle for id " << id;
            if (inserted) st.live[id] = v;
          } else if (roll < 7) {  // upsert
            uint64_t v = MakeValue(id, st.version++);
            auto prev = trie.Upsert(v);
            auto it = st.live.find(id);
            if (it != st.live.end()) {
              ASSERT_TRUE(prev.has_value());
              EXPECT_EQ(*prev, it->second)
                  << "upsert returned a stale value for id " << id;
            } else {
              EXPECT_FALSE(prev.has_value());
            }
            st.live[id] = v;
          } else {  // remove
            bool removed = trie.Remove(U64Key(id).ref());
            EXPECT_EQ(removed, st.live.erase(id) > 0)
                << "remove disagreed with oracle for id " << id;
          }
        }
      });
    }

    for (auto& th : writers) th.join();
    stop_readers.store(true, std::memory_order_release);
    for (auto& th : readers) th.join();

    // Quiesce point: no concurrent threads; check global invariants.
    std::string err;
    ASSERT_TRUE(trie.Validate(&err)) << "round " << round << ": " << err;
    size_t expected = 0;
    for (const auto& st : states) expected += st.live.size();
    EXPECT_EQ(trie.size(), expected);
    for (const auto& st : states) {
      for (const auto& [id, v] : st.live) {
        auto hit = trie.Lookup(U64Key(id).ref());
        ASSERT_TRUE(hit.has_value()) << "live id " << id << " missing";
        EXPECT_EQ(*hit, v) << "stale version for id " << id;
      }
      for (uint64_t id : st.touched) {
        if (st.live.count(id) != 0) continue;
        EXPECT_FALSE(trie.Lookup(U64Key(id).ref()).has_value())
            << "removed id " << id << " still present";
      }
    }
  }
}

// Batched readers (LookupBatch: one epoch guard covering an interleaved
// AMAC descent of the whole group, hot/batch_lookup.h) racing writers that
// continuously replace nodes copy-on-write.  Any hit must carry the probed
// key's id — the batch must never surface a torn or reclaimed entry.  This
// is the sanitizer-tier gate for the memory-level-parallel lookup path.
TEST(RowexStress, BatchedReadersRacingWriters) {
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 4;
  constexpr uint64_t kRanksPerWriter = 4096;
  constexpr size_t kBatch = 32;
  const size_t ops = OpsPerRound();

  StressTrie trie;
  // Pre-populate half of each writer's id space so batches see real hits
  // from the first iteration.
  for (uint64_t rank = 0; rank < kRanksPerWriter; rank += 2) {
    for (uint64_t t = 0; t < kWriters; ++t) {
      trie.Insert(MakeValue((rank << 4) | t, 0));
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SplitMix64 rng(0xcc00 + r);
      ZipfianGenerator zipf(kRanksPerWriter, 0.99, 0x33 + r);
      uint64_t ids[kBatch];
      uint8_t bytes[kBatch * 8];
      std::vector<KeyRef> keys(kBatch);
      std::vector<std::optional<uint64_t>> out(kBatch);
      while (!stop.load(std::memory_order_acquire)) {
        // Vary the batch size and interleave width every round so partial
        // tail groups and width-1 degeneration race writers too.
        size_t n = 1 + rng.NextBounded(kBatch);
        unsigned width = 1 + static_cast<unsigned>(rng.NextBounded(16));
        for (size_t i = 0; i < n; ++i) {
          ids[i] = (zipf.Next() << 4) | rng.NextBounded(kWriters);
          EncodeU64(ids[i], &bytes[i * 8]);
          keys[i] = KeyRef(&bytes[i * 8], 8);
        }
        trie.LookupBatch(std::span<const KeyRef>(keys.data(), n),
                         std::span<std::optional<uint64_t>>(out.data(), n),
                         width);
        for (size_t i = 0; i < n; ++i) {
          if (out[i].has_value()) {
            EXPECT_EQ(*out[i] & kIdMask, ids[i]);
          }
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      SplitMix64 rng(0xdd00 + t);
      ZipfianGenerator zipf(kRanksPerWriter, 0.99, 0x55 + t);
      uint64_t version = 1;
      for (size_t op = 0; op < ops; ++op) {
        uint64_t id = (zipf.Next() << 4) | t;
        switch (rng.NextBounded(3)) {
          case 0:
            trie.Insert(MakeValue(id, version++));
            break;
          case 1:
            trie.Upsert(MakeValue(id, version++));
            break;
          case 2:
            trie.Remove(U64Key(id).ref());
            break;
        }
      }
    });
  }

  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  std::string err;
  EXPECT_TRUE(trie.Validate(&err)) << err;

  // Post-quiesce: batched and scalar lookups agree exactly.
  std::vector<uint8_t> bytes(kRanksPerWriter * kWriters * 8);
  std::vector<KeyRef> keys(kRanksPerWriter * kWriters);
  std::vector<std::optional<uint64_t>> out(keys.size());
  size_t i = 0;
  for (uint64_t rank = 0; rank < kRanksPerWriter; ++rank) {
    for (uint64_t t = 0; t < kWriters; ++t, ++i) {
      EncodeU64((rank << 4) | t, &bytes[i * 8]);
      keys[i] = KeyRef(&bytes[i * 8], 8);
    }
  }
  trie.LookupBatch(keys, out);
  for (size_t k = 0; k < keys.size(); ++k) {
    EXPECT_EQ(out[k], trie.Lookup(keys[k]));
  }
}

// Readers hammering a handful of hot keys that writers continuously remove
// and re-insert: maximizes copy-on-write replacement of the same slots, the
// worst case for premature reclamation (ASan) and slot races (TSan).
TEST(RowexStress, HotSpotChurn) {
  constexpr size_t kWriters = 4;
  constexpr size_t kReaders = 4;
  constexpr uint64_t kHotKeys = 64;
  const size_t ops = OpsPerRound();

  StressTrie trie;
  for (uint64_t id = 0; id < kHotKeys; ++id) {
    ASSERT_TRUE(trie.Insert(MakeValue((id << 4) | (id % kWriters), 0)));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SplitMix64 rng(0xaa + r);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t hot = rng.NextBounded(kHotKeys);
        uint64_t id = (hot << 4) | (hot % kWriters);
        auto hit = trie.Lookup(U64Key(id).ref());
        if (hit.has_value()) {
          EXPECT_EQ(*hit & kIdMask, id);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      SplitMix64 rng(0xbb + t);
      uint64_t version = 1;
      for (size_t op = 0; op < ops; ++op) {
        // Each writer churns its own residue class of the hot set.
        uint64_t hot = rng.NextBounded(kHotKeys / kWriters) * kWriters + t;
        uint64_t id = (hot << 4) | (hot % kWriters);
        switch (rng.NextBounded(3)) {
          case 0:
            trie.Remove(U64Key(id).ref());
            break;
          case 1:
            trie.Insert(MakeValue(id, version++));
            break;
          case 2:
            trie.Upsert(MakeValue(id, version++));
            break;
        }
      }
    });
  }

  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  std::string err;
  EXPECT_TRUE(trie.Validate(&err)) << err;
}

// Targeted regression for the Upsert retry path (rowex.h: TryOverwrite
// returning "not found" means a concurrent Remove won the race, and the
// upsert must restart as a fresh insert).  One upserter and one remover
// hammer the SAME small key set, so nearly every upsert takes that
// contested path.  Presence accounting: an upsert that returns nullopt is
// an insert event (absent -> present), a successful remove is a delete
// event (present -> absent), and overwrites don't change presence — so for
// every key, at quiesce,
//     inserts - removes ∈ {0, 1}   and   present == (inserts - removes).
// A key present with inserts == removes RESURRECTED after a successful
// Remove returned; a key absent with inserts == removes + 1 LOST an upsert.
// Afterwards, with no concurrent writers, removing every live key must
// empty the trie for good.
TEST(RowexStress, UpsertVsRemoveRace) {
  constexpr size_t kPairs = 4;        // independent upserter/remover pairs
  constexpr uint64_t kKeysPerPair = 16;  // few keys = maximal contention
  const size_t ops = OpsPerRound();

  StressTrie trie;
  // inserts[k] written only by the pair's upserter, removes[k] only by its
  // remover; the joins below are the synchronization points.
  std::vector<uint64_t> inserts(kPairs * kKeysPerPair, 0);
  std::vector<uint64_t> removes(kPairs * kKeysPerPair, 0);
  auto id_of = [](size_t pair, uint64_t slot) {
    return (slot << 4) | pair;  // writer-id layout, disjoint across pairs
  };

  std::vector<std::thread> threads;
  for (size_t pair = 0; pair < kPairs; ++pair) {
    threads.emplace_back([&, pair] {  // upserter
      SplitMix64 rng(0xe100 + pair);
      uint64_t version = 1;
      for (size_t op = 0; op < ops; ++op) {
        uint64_t slot = rng.NextBounded(kKeysPerPair);
        uint64_t id = id_of(pair, slot);
        auto prev = trie.Upsert(MakeValue(id, version++));
        if (prev.has_value()) {
          // Overwrites must return a value for the SAME key, never one
          // spliced into a node the remover already retired.
          ASSERT_EQ(*prev & kIdMask, id);
        } else {
          ++inserts[pair * kKeysPerPair + slot];
        }
      }
    });
    threads.emplace_back([&, pair] {  // remover
      SplitMix64 rng(0xe200 + pair);
      for (size_t op = 0; op < ops; ++op) {
        uint64_t slot = rng.NextBounded(kKeysPerPair);
        if (trie.Remove(U64Key(id_of(pair, slot)).ref())) {
          ++removes[pair * kKeysPerPair + slot];
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  std::string err;
  ASSERT_TRUE(trie.Validate(&err)) << err;
  size_t expected_live = 0;
  for (size_t pair = 0; pair < kPairs; ++pair) {
    for (uint64_t slot = 0; slot < kKeysPerPair; ++slot) {
      uint64_t id = id_of(pair, slot);
      uint64_t i = inserts[pair * kKeysPerPair + slot];
      uint64_t d = removes[pair * kKeysPerPair + slot];
      ASSERT_LE(d, i) << "key " << id << ": more removes than inserts";
      ASSERT_LE(i - d, 1u) << "key " << id << ": impossible presence count";
      bool present = trie.Lookup(U64Key(id).ref()).has_value();
      if (i - d == 1) {
        EXPECT_TRUE(present) << "key " << id << " lost an upsert (inserts="
                             << i << ", removes=" << d << ")";
        ++expected_live;
      } else {
        EXPECT_FALSE(present)
            << "key " << id << " resurrected after a successful Remove "
            << "(inserts=" << i << ", removes=" << d << ")";
      }
    }
  }
  EXPECT_EQ(trie.size(), expected_live);

  // Quiesced drain: every successful Remove must be final.
  for (size_t pair = 0; pair < kPairs; ++pair) {
    for (uint64_t slot = 0; slot < kKeysPerPair; ++slot) {
      uint64_t id = id_of(pair, slot);
      if (trie.Lookup(U64Key(id).ref()).has_value()) {
        ASSERT_TRUE(trie.Remove(U64Key(id).ref()));
      }
      EXPECT_FALSE(trie.Lookup(U64Key(id).ref()).has_value())
          << "key " << id << " present after quiesced Remove";
    }
  }
  EXPECT_EQ(trie.size(), 0u);
  ASSERT_TRUE(trie.Validate(&err)) << err;
}

}  // namespace
}  // namespace hot
