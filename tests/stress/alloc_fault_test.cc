// Fault-injection tests for the copy-on-write insert/remove paths: arm
// AllocFaultInjector so the Nth node allocation throws std::bad_alloc and
// check that RowexHotTrie is exception-safe (a failed operation leaves the
// tree unchanged and structurally valid) and leak-free (every byte the pool
// accounted is returned by destruction, even after injected faults).
//
// The injector can also be armed at process start via HOT_ALLOC_FAIL_AT; the
// programmatic FailAfter/Disarm API used here covers the same code path.

#include "common/alloc.h"

#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/rng.h"
#include "hot/rowex.h"

namespace hot {
namespace {

using RowexU64 = RowexHotTrie<U64KeyExtractor>;

class AllocFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { AllocFaultInjector::Disarm(); }
};

TEST_F(AllocFaultTest, InjectorFailsExactlyTheNthAllocation) {
  MemoryCounter counter;
  CountingAllocator alloc(&counter);
  AllocFaultInjector::FailAfter(3);
  void* a = alloc.AllocateAligned(64, 16);
  void* b = alloc.AllocateAligned(64, 16);
  EXPECT_THROW(alloc.AllocateAligned(64, 16), std::bad_alloc);
  EXPECT_FALSE(AllocFaultInjector::armed());
  // Disarmed after firing: the next allocation succeeds.
  void* c = alloc.AllocateAligned(64, 16);
  alloc.FreeAligned(a, 64, 16);
  alloc.FreeAligned(b, 64, 16);
  alloc.FreeAligned(c, 64, 16);
  EXPECT_EQ(counter.live_bytes(), 0u);
}

// Sweep injected failures across a growing tree so every insert shape is
// hit: root replacement, pushdown, the §4.4 physical splice, and the
// overflow chain (splits every ~32nd insert).  A failed insert must leave
// the key absent, the size unchanged, and the structure valid; retrying
// disarmed must succeed.
TEST_F(AllocFaultTest, InsertIsExceptionSafeUnderInjectedFaults) {
  MemoryCounter counter;
  {
    RowexU64 trie(U64KeyExtractor(), &counter);
    SplitMix64 rng(42);
    size_t faults = 0;
    for (uint64_t i = 0; i < 600; ++i) {
      uint64_t v = 1 + i * 37;
      AllocFaultInjector::FailAfter(1 + i % 7);
      bool threw = false;
      try {
        EXPECT_TRUE(trie.Insert(v));
      } catch (const std::bad_alloc&) {
        threw = true;
      }
      AllocFaultInjector::Disarm();
      if (threw) {
        ++faults;
        EXPECT_FALSE(trie.Lookup(U64Key(v).ref()).has_value())
            << "failed insert left key " << v << " behind";
        EXPECT_EQ(trie.size(), i);
        ASSERT_TRUE(trie.Insert(v)) << "retry after fault failed for " << v;
      }
      ASSERT_TRUE(trie.Lookup(U64Key(v).ref()).has_value());
      ASSERT_EQ(trie.size(), i + 1);
      if (i % 97 == 0) {
        std::string err;
        ASSERT_TRUE(trie.Validate(&err)) << "after value " << v << ": " << err;
      }
    }
    EXPECT_GT(faults, 0u) << "sweep never hit an allocation — injector dead?";
    std::string err;
    ASSERT_TRUE(trie.Validate(&err)) << err;
  }
  // Leak-freedom: every failed partial chain was freed, every retired node
  // collected, so destruction returns the pool to zero live bytes.
  EXPECT_EQ(counter.live_bytes(), 0u);
}

TEST_F(AllocFaultTest, RemoveIsExceptionSafeUnderInjectedFaults) {
  MemoryCounter counter;
  {
    RowexU64 trie(U64KeyExtractor(), &counter);
    constexpr uint64_t kKeys = 600;
    for (uint64_t v = 1; v <= kKeys; ++v) ASSERT_TRUE(trie.Insert(v));
    size_t faults = 0;
    for (uint64_t v = 1; v <= kKeys; ++v) {
      AllocFaultInjector::FailAfter(1);
      bool threw = false;
      try {
        EXPECT_TRUE(trie.Remove(U64Key(v).ref()));
      } catch (const std::bad_alloc&) {
        threw = true;
      }
      AllocFaultInjector::Disarm();
      if (threw) {
        ++faults;
        EXPECT_TRUE(trie.Lookup(U64Key(v).ref()).has_value())
            << "failed remove lost key " << v;
        EXPECT_EQ(trie.size(), kKeys - v + 1);
        ASSERT_TRUE(trie.Remove(U64Key(v).ref()));
      }
      ASSERT_FALSE(trie.Lookup(U64Key(v).ref()).has_value());
    }
    EXPECT_GT(faults, 0u);
    EXPECT_EQ(trie.size(), 0u);
  }
  EXPECT_EQ(counter.live_bytes(), 0u);
}

// Concurrent writers with faults injected mid-flight: whichever thread's
// allocation eats the countdown gets a clean bad_alloc, retries, and the
// final tree must contain exactly every value, with zero bytes leaked.
TEST_F(AllocFaultTest, ConcurrentWritersSurviveInjectedFaults) {
  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 4000;
  MemoryCounter counter;
  {
    RowexU64 trie(U64KeyExtractor(), &counter);
    std::atomic<uint64_t> faults{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (uint64_t i = 0; i < kPerThread; ++i) {
          uint64_t v = 1 + t * kPerThread + i;
          if (i % 61 == 0) AllocFaultInjector::FailAfter(2 + i % 5);
          for (;;) {
            try {
              EXPECT_TRUE(trie.Insert(v));
              break;
            } catch (const std::bad_alloc&) {
              faults.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    AllocFaultInjector::Disarm();

    EXPECT_GT(faults.load(), 0u);
    EXPECT_EQ(trie.size(), kThreads * kPerThread);
    std::string err;
    ASSERT_TRUE(trie.Validate(&err)) << err;
    for (uint64_t v = 1; v <= kThreads * kPerThread; ++v) {
      ASSERT_TRUE(trie.Lookup(U64Key(v).ref()).has_value()) << v;
    }
  }
  EXPECT_EQ(counter.live_bytes(), 0u);
}

}  // namespace
}  // namespace hot
