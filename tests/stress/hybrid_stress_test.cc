// Multi-threaded stress driver for the hybrid static/delta index
// (hot/hybrid.h), sized for the sanitizer lanes (TSan is the primary
// audience: readers traverse three layers whose pointers a background
// merge thread freezes, rebuilds and swaps under them).
//
// Shape: writer threads (insert/upsert/remove over Zipfian ranks, disjoint
// id spaces so each keeps an exact oracle) race reader threads (point
// lookups and ordered scans) while background merges fire continuously —
// the trigger is deliberately small so every round crosses many
// freeze → parallel-rebuild → epoch-retired swap cycles.  Reader-side
// invariants hold mid-merge: a hit carries the probed key's id, scans
// yield strictly ascending ids starting at or after the origin, and no
// read ever blocks on or crashes into a swapped-out layer (ASan/TSan
// enforce the reclamation half).  At each round's quiesce point the main
// thread forces a final merge and checks the global invariants exactly.
//
// HOT_STRESS_OPS overrides the per-writer per-round op count.

#include "hot/hybrid.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/extractors.h"
#include "common/key.h"
#include "common/rng.h"

namespace hot {
namespace {

// Value layout: [version:23][id:40], bit 63 clear; the key is the id alone
// (same scheme as rowex_stress_test).
constexpr unsigned kIdBits = 40;
constexpr uint64_t kIdMask = (1ULL << kIdBits) - 1;

struct VersionedExtractor {
  KeyRef operator()(uint64_t value, KeyScratch& scratch) const {
    EncodeU64(value & kIdMask, scratch.bytes);
    return KeyRef(scratch.bytes, 8);
  }
};

using StressHybrid = HybridHotIndex<VersionedExtractor>;

uint64_t MakeValue(uint64_t id, uint64_t version) {
  return ((version & ((1ULL << 22) - 1)) << kIdBits) | id;
}

size_t OpsPerRound() {
  const char* s = std::getenv("HOT_STRESS_OPS");
  if (s != nullptr) {
    unsigned long long v = std::strtoull(s, nullptr, 10);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 8000;
}

struct WriterState {
  std::unordered_map<uint64_t, uint64_t> live;  // id -> last value
  std::unordered_set<uint64_t> touched;
  uint64_t version = 1;
};

TEST(HybridStress, ReadersRacingBackgroundMerges) {
  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 4;
  constexpr size_t kRounds = 3;
  constexpr uint64_t kRanksPerWriter = 4096;
  const size_t ops_per_round = OpsPerRound();

  StressHybrid::MergeOptions opts;
  opts.min_delta = 1024;  // small: many merge cycles per round
  opts.ratio = 0.05;
  opts.rebuild_threads = 2;
  opts.background = true;
  StressHybrid index(VersionedExtractor(), nullptr, opts);
  std::vector<WriterState> states(kWriters);

  for (size_t round = 0; round < kRounds; ++round) {
    std::atomic<bool> stop_readers{false};

    std::vector<std::thread> readers;
    for (size_t r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        SplitMix64 rng(0x7000 + round * 131 + r);
        ZipfianGenerator zipf(kRanksPerWriter, 0.99, 0x11 + r);
        while (!stop_readers.load(std::memory_order_acquire)) {
          uint64_t id = (zipf.Next() << 4) | rng.NextBounded(kWriters);
          if (rng.NextBounded(4) != 0) {
            auto hit = index.Lookup(U64Key(id).ref());
            if (hit.has_value()) {
              EXPECT_EQ(*hit & kIdMask, id);
            }
          } else {
            // Merged three-layer scans racing the swap: ids must ascend
            // strictly from at-or-after the origin, regardless of which
            // base generation served which chunk.
            uint64_t prev_id = 0;
            bool first = true;
            size_t limit = 8 + rng.NextBounded(120);
            size_t n = index.ScanFrom(U64Key(id).ref(), limit,
                                      [&](uint64_t v) {
                                        uint64_t got = v & kIdMask;
                                        if (first) {
                                          EXPECT_GE(got, id);
                                        } else {
                                          EXPECT_GT(got, prev_id);
                                        }
                                        prev_id = got;
                                        first = false;
                                      });
            EXPECT_LE(n, limit);
          }
        }
      });
    }

    std::vector<std::thread> writers;
    for (size_t t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        WriterState& st = states[t];
        SplitMix64 rng(0x3000 + round * 17 + t);
        ZipfianGenerator zipf(kRanksPerWriter, 0.99, round * 31 + t + 1);
        for (size_t op = 0; op < ops_per_round; ++op) {
          uint64_t id = (zipf.Next() << 4) | t;
          st.touched.insert(id);
          uint64_t roll = rng.NextBounded(10);
          if (roll < 4) {  // insert
            uint64_t v = MakeValue(id, st.version++);
            bool inserted = index.Insert(v);
            EXPECT_EQ(inserted, st.live.count(id) == 0)
                << "insert disagreed with oracle for id " << id;
            if (inserted) st.live[id] = v;
          } else if (roll < 7) {  // upsert
            uint64_t v = MakeValue(id, st.version++);
            auto prev = index.Upsert(v);
            auto it = st.live.find(id);
            if (it != st.live.end()) {
              ASSERT_TRUE(prev.has_value());
              EXPECT_EQ(*prev, it->second)
                  << "upsert returned a stale value for id " << id;
            } else {
              EXPECT_FALSE(prev.has_value());
            }
            st.live[id] = v;
          } else {  // remove
            bool removed = index.Remove(U64Key(id).ref());
            EXPECT_EQ(removed, st.live.erase(id) > 0)
                << "remove disagreed with oracle for id " << id;
          }
        }
      });
    }

    for (auto& th : writers) th.join();
    stop_readers.store(true, std::memory_order_release);
    for (auto& th : readers) th.join();

    // Quiesce: drain the delta completely, then check exact state.
    index.ForceMerge();
    auto stats = index.hybrid_stats();
    EXPECT_EQ(stats.delta_live + stats.delta_dead, 0u)
        << "round " << round << ": delta not drained";
    EXPECT_EQ(stats.frozen_entries, 0u);
    std::string err;
    ASSERT_TRUE(index.CheckStructure(&err)) << "round " << round << ": "
                                            << err;
    size_t expected = 0;
    for (const auto& st : states) expected += st.live.size();
    EXPECT_EQ(index.size(), expected);
    EXPECT_EQ(stats.base_entries, expected);
    for (const auto& st : states) {
      for (const auto& [id, v] : st.live) {
        auto hit = index.Lookup(U64Key(id).ref());
        ASSERT_TRUE(hit.has_value()) << "live id " << id << " missing";
        EXPECT_EQ(*hit, v) << "stale version for id " << id;
      }
      for (uint64_t id : st.touched) {
        if (st.live.count(id) != 0) continue;
        EXPECT_FALSE(index.Lookup(U64Key(id).ref()).has_value())
            << "removed id " << id << " still present";
      }
    }
  }
  // Merges must actually have fired while readers raced them.
  EXPECT_GE(index.hybrid_stats().merges, kRounds);
}

// Hot-spot churn concentrated on few keys, racing background merges: every
// cycle moves the hot keys between delta, frozen and rebuilt-base
// residency while readers hammer them — the worst case for the layer
// precedence protocol (a key's current version may live in any layer, its
// tombstone in a newer one).
TEST(HybridStress, HotSpotChurnAcrossMergeCycles) {
  constexpr size_t kWriters = 2;
  constexpr size_t kReaders = 4;
  constexpr uint64_t kHotKeys = 64;
  const size_t ops = OpsPerRound();

  StressHybrid::MergeOptions opts;
  // With only 64 distinct keys a generation holds at most 64 entries, so
  // the trigger must sit below that for cycles to fire at all.
  opts.min_delta = 32;
  opts.ratio = 0.01;
  opts.rebuild_threads = 2;
  opts.background = true;
  StressHybrid index(VersionedExtractor(), nullptr, opts);
  for (uint64_t id = 0; id < kHotKeys; ++id) {
    ASSERT_TRUE(index.Insert(MakeValue((id << 4) | (id % kWriters), 0)));
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      SplitMix64 rng(0xaa + r);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t hot = rng.NextBounded(kHotKeys);
        uint64_t id = (hot << 4) | (hot % kWriters);
        auto hit = index.Lookup(U64Key(id).ref());
        if (hit.has_value()) {
          EXPECT_EQ(*hit & kIdMask, id);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      SplitMix64 rng(0xbb + t);
      uint64_t version = 1;
      for (size_t op = 0; op < ops; ++op) {
        uint64_t hot = rng.NextBounded(kHotKeys / kWriters) * kWriters + t;
        uint64_t id = (hot << 4) | (hot % kWriters);
        switch (rng.NextBounded(3)) {
          case 0:
            index.Remove(U64Key(id).ref());
            break;
          case 1:
            index.Insert(MakeValue(id, version++));
            break;
          case 2:
            index.Upsert(MakeValue(id, version++));
            break;
        }
      }
    });
  }

  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  index.ForceMerge();
  std::string err;
  EXPECT_TRUE(index.CheckStructure(&err)) << err;
  EXPECT_GE(index.hybrid_stats().merges, 1u);
}

}  // namespace
}  // namespace hot
