// Epoch-reclamation torture (stress tier): thread churn far past
// EpochManager::kMaxThreads with readers dereferencing an epoch-protected
// object that swapper threads continuously replace and retire.
//
// Under -DHOT_SANITIZE=address a premature free is a hard use-after-free
// report; in plain builds the deleter poisons a magic word before freeing,
// so a reader that outlives its protection observes the poison and the test
// fails without a sanitizer too.
//
// Also asserts the slot-recycling contract: after every wave of threads has
// exited, all kMaxThreads slots must be back in the pool (register /
// unregister cycles must not leak slots), and an oversubscribed run (more
// simultaneous threads than slots) must make progress by blocking — never by
// sharing a slot.

#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace hot {
namespace {

constexpr uint64_t kLiveMagic = 0xfeedfacecafebeefULL;
constexpr uint64_t kDeadMagic = 0xdeadbeefdeadbeefULL;

struct Payload {
  explicit Payload(uint64_t m) : magic(m) {}
  std::atomic<uint64_t> magic;
};

void RetirePayload(EpochManager* epochs, Payload* p) {
  epochs->Retire(p, [](void* v) {
    auto* pl = static_cast<Payload*>(v);
    pl->magic.store(kDeadMagic, std::memory_order_relaxed);
    delete pl;
  });
}

// 12 waves x 48 threads = 576 short-lived threads through a 256-slot table.
TEST(EpochTorture, ChurnPastMaxThreadsNoUseAfterFree) {
  EpochManager epochs;
  std::atomic<Payload*> shared{new Payload(kLiveMagic)};
  std::atomic<uint64_t> bad_reads{0};

  constexpr size_t kWaves = 12;
  constexpr size_t kThreadsPerWave = 48;
  static_assert(kWaves * kThreadsPerWave > EpochManager::kMaxThreads);

  for (size_t wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kThreadsPerWave);
    for (size_t t = 0; t < kThreadsPerWave; ++t) {
      threads.emplace_back([&, wave, t] {
        SplitMix64 rng(wave * 977 + t + 1);
        for (int iter = 0; iter < 300; ++iter) {
          EpochGuard guard(&epochs);
          Payload* p = shared.load(std::memory_order_acquire);
          if (p->magic.load(std::memory_order_relaxed) != kLiveMagic) {
            bad_reads.fetch_add(1, std::memory_order_relaxed);
          }
          if (rng.NextBounded(8) == 0) {
            // Nested guard: the inner Leave must not unpin the outer scope.
            EpochGuard nested(&epochs);
            Payload* q = shared.load(std::memory_order_acquire);
            if (q->magic.load(std::memory_order_relaxed) != kLiveMagic) {
              bad_reads.fetch_add(1, std::memory_order_relaxed);
            }
          }
          // The pointer loaded at guard entry must stay dereferenceable for
          // the whole guarded scope even if it was retired meanwhile.
          if (rng.NextBounded(16) == 0) {
            Payload* fresh = new Payload(kLiveMagic);
            Payload* old = shared.exchange(fresh, std::memory_order_acq_rel);
            RetirePayload(&epochs, old);
          }
          if (p->magic.load(std::memory_order_relaxed) == kDeadMagic) {
            bad_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    // All of this wave's threads exited: every slot (including those
    // inherited from earlier waves) must have been returned to the pool.
    EXPECT_EQ(epochs.UsedSlots(), 0u) << "slot leak after wave " << wave;
  }

  EXPECT_EQ(bad_reads.load(), 0u);
  epochs.CollectAll();
  delete shared.exchange(nullptr);
}

// More simultaneous threads than slots: latecomers block in AcquireSlot
// until earlier threads exit.  Progress (the test terminating) shows
// blocking works; zero bad reads shows no slot was ever shared.
TEST(EpochTorture, OversubscribedGuardedReadersMakeProgress) {
  EpochManager epochs;
  std::atomic<Payload*> shared{new Payload(kLiveMagic)};
  std::atomic<uint64_t> bad_reads{0};

  constexpr size_t kThreads = EpochManager::kMaxThreads + 32;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SplitMix64 rng(t + 1);
      for (int iter = 0; iter < 100; ++iter) {
        EpochGuard guard(&epochs);
        Payload* p = shared.load(std::memory_order_acquire);
        if (p->magic.load(std::memory_order_relaxed) != kLiveMagic) {
          bad_reads.fetch_add(1, std::memory_order_relaxed);
        }
        if (rng.NextBounded(32) == 0) {
          Payload* fresh = new Payload(kLiveMagic);
          Payload* old = shared.exchange(fresh, std::memory_order_acq_rel);
          RetirePayload(&epochs, old);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad_reads.load(), 0u);
  EXPECT_EQ(epochs.UsedSlots(), 0u);
  epochs.CollectAll();
  delete shared.exchange(nullptr);
}

// A thread that exits while retired objects are still in its limbo list must
// not strand them: slot recycling hands the list to the next owner and the
// manager's destructor collects whatever remains.
TEST(EpochTorture, ExitingThreadsDoNotStrandLimboItems) {
  std::atomic<int> deleted{0};
  {
    EpochManager epochs;
    for (int round = 0; round < 8; ++round) {
      std::thread([&] {
        EpochGuard guard(&epochs);
        for (int i = 0; i < 4; ++i) {
          epochs.Retire(new int(i),
                        [](void* p) { delete static_cast<int*>(p); });
        }
      }).join();
    }
    // Retire counted objects from the main thread and let destruction
    // collect everything (main thread never entered an epoch => idle).
    for (int i = 0; i < 4; ++i) {
      epochs.Retire(&deleted, [](void* p) {
        static_cast<std::atomic<int>*>(p)->fetch_add(1,
                                                     std::memory_order_relaxed);
      });
    }
  }
  EXPECT_EQ(deleted.load(), 4);
}

}  // namespace
}  // namespace hot
