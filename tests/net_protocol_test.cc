// Protocol tier for the network front-end (net/protocol.h, net/server.h):
//
//   * codec round-trips for every opcode and every reply shape;
//   * malformed-frame containment against a LIVE server: truncated length
//     prefixes, zero and huge declared lengths, unknown opcodes, oversized
//     keys — each must produce a clean error reply or a clean close, never
//     a crash or an out-of-bounds read (this binary runs under ASan in CI's
//     `net` job);
//   * partial-I/O torture: requests dribbled one byte at a time and replies
//     read one byte at a time must parse identically to bulk I/O;
//   * mid-request disconnects: connections abandoned with half a frame
//     buffered must be fully reaped (no fd/buffer leak, proven through
//     ServerStats::connections_open()).

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/record_store.h"
#include "net/server.h"

namespace hot {
namespace net {
namespace {

using ::testing::Test;

// --- codec round-trips (no sockets) -----------------------------------------

KeyRef K(const char* s) {
  return KeyRef(reinterpret_cast<const uint8_t*>(s), strlen(s));
}

// Frames the encoder produced must come back through NextFrame+ParseRequest
// bit-exact.
TEST(NetProtocolCodec, RequestRoundTripEveryOpcode) {
  std::vector<uint8_t> buf;
  EncodeGet(&buf, 7, K("alpha"));
  EncodePut(&buf, 8, K("beta"), 0xdeadbeefcafe0123ull);
  EncodeDelete(&buf, 9, K("gamma"));
  EncodeScan(&buf, 10, K("delta"), 4096);

  size_t off = 0;
  auto next = [&](Request* req) {
    const uint8_t* body = nullptr;
    size_t body_len = 0, consumed = 0;
    FrameVerdict v = NextFrame(buf.data() + off, buf.size() - off,
                               kDefaultMaxFrameBody, &body, &body_len,
                               &consumed);
    ASSERT_EQ(v, FrameVerdict::kHaveFrame);
    std::string err;
    ASSERT_EQ(ParseRequest(body, body_len, req, &err), ParseVerdict::kParsedOk)
        << err;
    off += consumed;
  };

  Request r;
  next(&r);
  EXPECT_EQ(r.id, 7u);
  EXPECT_EQ(r.op, kOpGet);
  EXPECT_EQ(r.key, K("alpha"));
  next(&r);
  EXPECT_EQ(r.id, 8u);
  EXPECT_EQ(r.op, kOpPut);
  EXPECT_EQ(r.key, K("beta"));
  EXPECT_EQ(r.value, 0xdeadbeefcafe0123ull);
  next(&r);
  EXPECT_EQ(r.id, 9u);
  EXPECT_EQ(r.op, kOpDelete);
  EXPECT_EQ(r.key, K("gamma"));
  next(&r);
  EXPECT_EQ(r.id, 10u);
  EXPECT_EQ(r.op, kOpScan);
  EXPECT_EQ(r.key, K("delta"));
  EXPECT_EQ(r.scan_limit, 4096u);
  EXPECT_EQ(off, buf.size());
}

TEST(NetProtocolCodec, ReplyRoundTripEveryShape) {
  std::string err;
  Reply reply;
  {
    std::vector<uint8_t> buf;
    EncodeGetReply(&buf, 1, true, 42);
    ASSERT_TRUE(ParseReply(buf.data() + 4, buf.size() - 4, kOpGet, &reply,
                           &err))
        << err;
    EXPECT_EQ(reply.id, 1u);
    EXPECT_EQ(reply.status, kOk);
    EXPECT_EQ(reply.value, 42u);
  }
  {
    std::vector<uint8_t> buf;
    EncodeGetReply(&buf, 2, false, 0);
    ASSERT_TRUE(
        ParseReply(buf.data() + 4, buf.size() - 4, kOpGet, &reply, &err));
    EXPECT_EQ(reply.status, kNotFound);
  }
  {
    std::vector<uint8_t> buf;
    EncodePutReply(&buf, 3, true, 0);
    ASSERT_TRUE(
        ParseReply(buf.data() + 4, buf.size() - 4, kOpPut, &reply, &err));
    EXPECT_TRUE(reply.created);
  }
  {
    std::vector<uint8_t> buf;
    EncodePutReply(&buf, 4, false, 99);
    ASSERT_TRUE(
        ParseReply(buf.data() + 4, buf.size() - 4, kOpPut, &reply, &err));
    EXPECT_FALSE(reply.created);
    EXPECT_EQ(reply.prev, 99u);
  }
  {
    std::vector<uint8_t> buf;
    EncodeDeleteReply(&buf, 5, true);
    ASSERT_TRUE(
        ParseReply(buf.data() + 4, buf.size() - 4, kOpDelete, &reply, &err));
    EXPECT_EQ(reply.status, kOk);
  }
  {
    std::vector<uint8_t> buf;
    ScanReplyBuilder b(&buf, 6);
    b.Add(K("k1"), 11);
    b.Add(K("k2"), 22);
    b.Finish();
    ASSERT_TRUE(
        ParseReply(buf.data() + 4, buf.size() - 4, kOpScan, &reply, &err))
        << err;
    ASSERT_EQ(reply.scan.size(), 2u);
    EXPECT_EQ(reply.scan[0].key, "k1");
    EXPECT_EQ(reply.scan[0].value, 11u);
    EXPECT_EQ(reply.scan[1].key, "k2");
    EXPECT_EQ(reply.scan[1].value, 22u);
  }
  {
    std::vector<uint8_t> buf;
    EncodeErrorReply(&buf, 7, kBadRequest, "nope");
    ASSERT_TRUE(
        ParseReply(buf.data() + 4, buf.size() - 4, kOpGet, &reply, &err));
    EXPECT_EQ(reply.status, kBadRequest);
    EXPECT_EQ(reply.error, "nope");
  }
  {
    // Server-fault status (WAL commit failure): carries a message like the
    // other error statuses but is distinguishable from bad input.
    std::vector<uint8_t> buf;
    EncodeErrorReply(&buf, 8, kServerError, "wal commit: fsync");
    ASSERT_TRUE(
        ParseReply(buf.data() + 4, buf.size() - 4, kOpPut, &reply, &err));
    EXPECT_EQ(reply.status, kServerError);
    EXPECT_EQ(reply.error, "wal commit: fsync");
  }
}

// NextFrame must report kNeedMore for every strict prefix of a frame and
// never touch bytes beyond `size` (ASan-checked via exact-size heap copies).
TEST(NetProtocolCodec, IncrementalFramingEveryPrefix) {
  std::vector<uint8_t> frame;
  EncodePut(&frame, 77, K("incremental"), 123);
  for (size_t len = 0; len < frame.size(); ++len) {
    // Exact-size allocation: one byte past `len` is redzone under ASan.
    std::vector<uint8_t> prefix(frame.begin(), frame.begin() + len);
    const uint8_t* body;
    size_t body_len, consumed;
    EXPECT_EQ(NextFrame(prefix.data(), prefix.size(), kDefaultMaxFrameBody,
                        &body, &body_len, &consumed),
              FrameVerdict::kNeedMore)
        << "prefix length " << len;
  }
  const uint8_t* body;
  size_t body_len, consumed;
  EXPECT_EQ(NextFrame(frame.data(), frame.size(), kDefaultMaxFrameBody, &body,
                      &body_len, &consumed),
            FrameVerdict::kHaveFrame);
  EXPECT_EQ(consumed, frame.size());
}

TEST(NetProtocolCodec, BadDeclaredLengths) {
  const uint8_t* body;
  size_t body_len, consumed;
  // Zero declared length (< kMinBody).
  uint8_t zero[8] = {0, 0, 0, 0, 1, 2, 3, 4};
  EXPECT_EQ(NextFrame(zero, sizeof(zero), kDefaultMaxFrameBody, &body,
                      &body_len, &consumed),
            FrameVerdict::kBadLength);
  // Sub-minimum declared length.
  uint8_t tiny[8] = {8, 0, 0, 0, 1, 2, 3, 4};
  EXPECT_EQ(NextFrame(tiny, sizeof(tiny), kDefaultMaxFrameBody, &body,
                      &body_len, &consumed),
            FrameVerdict::kBadLength);
  // Huge declared length: rejected from the 4 length bytes alone — the
  // server must NOT wait for (or try to buffer) 4 GiB.
  uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(NextFrame(huge, sizeof(huge), kDefaultMaxFrameBody, &body,
                      &body_len, &consumed),
            FrameVerdict::kBadLength);
}

TEST(NetProtocolCodec, ParseRequestRejectsMalformedBodies) {
  auto parse = [](std::vector<uint8_t> body) {
    // Exact-size heap buffer: any over-read trips ASan.
    Request req;
    return ParseRequest(body.data(), body.size(), &req, nullptr);
  };
  auto body = [](uint8_t op, std::vector<uint8_t> payload) {
    std::vector<uint8_t> b;
    PutU64(&b, 1234);
    b.push_back(op);
    b.insert(b.end(), payload.begin(), payload.end());
    return b;
  };
  // Unknown opcodes.
  EXPECT_EQ(parse(body(0, {})), ParseVerdict::kParseBadRequest);
  EXPECT_EQ(parse(body(99, {})), ParseVerdict::kParseBadRequest);
  // Truncated key length.
  EXPECT_EQ(parse(body(kOpGet, {})), ParseVerdict::kParseBadRequest);
  EXPECT_EQ(parse(body(kOpGet, {5})), ParseVerdict::kParseBadRequest);
  // Key length pointing past the declared body.
  EXPECT_EQ(parse(body(kOpGet, {100, 0, 'a', 'b'})),
            ParseVerdict::kParseBadRequest);
  // Key over the wire limit (frame itself is consistent).
  {
    std::vector<uint8_t> payload;
    PutU16(&payload, kMaxKeyLen + 1);
    payload.insert(payload.end(), kMaxKeyLen + 1, 'x');
    EXPECT_EQ(parse(body(kOpGet, payload)), ParseVerdict::kParseKeyTooLong);
  }
  // PUT without its value / with trailing junk.
  EXPECT_EQ(parse(body(kOpPut, {1, 0, 'k'})), ParseVerdict::kParseBadRequest);
  {
    std::vector<uint8_t> payload = {1, 0, 'k'};
    payload.insert(payload.end(), 9, 0);  // 8 value bytes + 1 extra
    EXPECT_EQ(parse(body(kOpPut, payload)), ParseVerdict::kParseBadRequest);
  }
  // SCAN with a zero limit.
  EXPECT_EQ(parse(body(kOpScan, {1, 0, 'k', 0, 0, 0, 0})),
            ParseVerdict::kParseBadRequest);
  // GET with trailing bytes after the key.
  EXPECT_EQ(parse(body(kOpGet, {1, 0, 'k', 0})),
            ParseVerdict::kParseBadRequest);
}

// Deterministic garbage must never crash or over-read either parser.
TEST(NetProtocolCodec, RandomGarbageNeverOverReads) {
  std::mt19937_64 rng(0xfeedface);
  for (int iter = 0; iter < 5000; ++iter) {
    size_t len = rng() % 64;
    std::vector<uint8_t> junk(len);
    for (auto& b : junk) b = static_cast<uint8_t>(rng());
    if (len >= kMinBody) {
      Request req;
      ParseRequest(junk.data(), junk.size(), &req, nullptr);
    }
    Reply reply;
    std::string err;
    for (uint8_t op : {kOpGet, kOpPut, kOpDelete, kOpScan}) {
      ParseReply(junk.data(), junk.size(), op, &reply, &err);
    }
    const uint8_t* body;
    size_t body_len, consumed;
    NextFrame(junk.data(), junk.size(), kDefaultMaxFrameBody, &body, &body_len,
              &consumed);
  }
}

// --- key escape (net/record_store.h) ----------------------------------------

TEST(NetKeyEscape, OrderPreservingAndPrefixFree) {
  std::mt19937_64 rng(42);
  auto random_key = [&]() {
    size_t len = rng() % 12;
    std::vector<uint8_t> k(len);
    for (auto& b : k) b = static_cast<uint8_t>(rng() % 4);  // NUL-heavy
    return k;
  };
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<uint8_t> a = random_key(), b = random_key();
    std::vector<uint8_t> ea, eb;
    EscapeKey(KeyRef(a.data(), a.size()), &ea);
    EscapeKey(KeyRef(b.data(), b.size()), &eb);
    ASSERT_EQ(ea.size(), EscapedKeyLength(KeyRef(a.data(), a.size())));
    int raw = KeyRef(a.data(), a.size()).Compare(KeyRef(b.data(), b.size()));
    int esc = KeyRef(ea.data(), ea.size()).Compare(KeyRef(eb.data(), eb.size()));
    ASSERT_EQ(raw < 0, esc < 0) << iter;
    ASSERT_EQ(raw == 0, esc == 0) << iter;
    // Prefix-freeness: distinct keys never escape to a prefix of another.
    if (raw != 0) {
      size_t min = std::min(ea.size(), eb.size());
      ASSERT_NE(memcmp(ea.data(), eb.data(), min), 0)
          << "escaped form is a prefix of another";
    }
  }
}

// --- live-server harness -----------------------------------------------------

// Raw socket with explicit control over write granularity — KvClient is
// deliberately not used where the point is malformed or fragmented bytes.
struct RawConn {
  int fd = -1;

  ~RawConn() { Close(); }

  bool Connect(uint16_t port) {
    fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    timeval tv{};
    tv.tv_sec = 20;  // blocking reads fail loudly instead of hanging CI
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  void Close() {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  bool WriteAll(const uint8_t* p, size_t n) {
    size_t off = 0;
    while (off < n) {
      ssize_t w = ::write(fd, p + off, n - off);
      if (w < 0 && errno == EINTR) continue;
      if (w <= 0) return false;
      off += static_cast<size_t>(w);
    }
    return true;
  }
  bool WriteAll(const std::vector<uint8_t>& v) {
    return WriteAll(v.data(), v.size());
  }

  // One byte per write(2) call — the server must reassemble.
  bool WriteByteByByte(const std::vector<uint8_t>& v) {
    for (uint8_t b : v) {
      if (!WriteAll(&b, 1)) return false;
    }
    return true;
  }

  // Reads exactly n bytes, `chunk` bytes per read(2) call.
  bool ReadExact(uint8_t* p, size_t n, size_t chunk = SIZE_MAX) {
    size_t off = 0;
    while (off < n) {
      ssize_t r = ::read(fd, p + off, std::min(chunk, n - off));
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) return false;
      off += static_cast<size_t>(r);
    }
    return true;
  }

  // Reads one reply frame; false on EOF/timeout.
  bool ReadFrame(std::vector<uint8_t>* frame_body, size_t chunk = SIZE_MAX) {
    uint8_t len[4];
    if (!ReadExact(len, 4, chunk)) return false;
    uint32_t body_len = GetU32(len);
    if (body_len > (64u << 20)) return false;
    frame_body->resize(body_len);
    return ReadExact(frame_body->data(), body_len, chunk);
  }

  // True when the server closed its end.
  bool ExpectEof() {
    uint8_t b;
    while (true) {
      ssize_t r = ::read(fd, &b, 1);
      if (r < 0 && errno == EINTR) continue;
      return r == 0;
    }
  }
};

class NetServerFixture : public Test {
 protected:
  void SetUp() override {
    std::string err;
    ASSERT_TRUE(server_.Start(&err)) << err;
  }

  // Polls until every accepted connection has been reaped.
  bool AwaitAllClosed(uint64_t expected_accepted,
                      std::chrono::seconds deadline = std::chrono::seconds(10)) {
    auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
      ServerStats s = server_.StatsSnapshot();
      if (s.connections_accepted >= expected_accepted &&
          s.connections_open() == 0) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  // A fresh connection can still PUT+GET — the liveness probe every
  // malformed-input test ends with.
  void AssertServerAlive(const char* key, uint64_t value) {
    KvClient c;
    std::string err;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_.port(), &err)) << err;
    Reply reply;
    ASSERT_TRUE(c.Put(K(key), value, &reply, &err)) << err;
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(c.Get(K(key), &reply, &err)) << err;
    ASSERT_EQ(reply.status, kOk);
    ASSERT_EQ(reply.value, value);
  }

  KvServer server_{[] {
    ServerOptions opt;
    opt.workers = 2;
    opt.shards = 4;
    opt.batch_low_watermark = 2;
    return opt;
  }()};
};

// --- malformed frames against the live server --------------------------------

TEST_F(NetServerFixture, TruncatedLengthPrefixThenDisconnect) {
  uint64_t before = server_.StatsSnapshot().connections_accepted;
  {
    RawConn c;
    ASSERT_TRUE(c.Connect(server_.port()));
    uint8_t two[2] = {0x05, 0x00};  // half a length prefix
    ASSERT_TRUE(c.WriteAll(two, 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }  // disconnect with the prefix still buffered server-side
  ASSERT_TRUE(AwaitAllClosed(before + 1));
  AssertServerAlive("after-truncated-prefix", 1);
}

TEST_F(NetServerFixture, ZeroDeclaredLengthIsFatalButClean) {
  RawConn c;
  ASSERT_TRUE(c.Connect(server_.port()));
  uint8_t zero[4] = {0, 0, 0, 0};
  ASSERT_TRUE(c.WriteAll(zero, 4));
  std::vector<uint8_t> body;
  ASSERT_TRUE(c.ReadFrame(&body));  // one kBadFrame reply, id 0
  Reply reply;
  std::string err;
  ASSERT_TRUE(ParseReply(body.data(), body.size(), 0, &reply, &err)) << err;
  EXPECT_EQ(reply.id, 0u);
  EXPECT_EQ(reply.status, kBadFrame);
  EXPECT_TRUE(c.ExpectEof());  // then the server closes
  EXPECT_GE(server_.StatsSnapshot().protocol_errors, 1u);
  AssertServerAlive("after-zero-length", 2);
}

TEST_F(NetServerFixture, HugeDeclaredLengthIsFatalButClean) {
  RawConn c;
  ASSERT_TRUE(c.Connect(server_.port()));
  uint8_t huge[4] = {0xff, 0xff, 0xff, 0x7f};  // ~2 GiB declared body
  ASSERT_TRUE(c.WriteAll(huge, 4));
  std::vector<uint8_t> body;
  ASSERT_TRUE(c.ReadFrame(&body));
  Reply reply;
  std::string err;
  ASSERT_TRUE(ParseReply(body.data(), body.size(), 0, &reply, &err)) << err;
  EXPECT_EQ(reply.status, kBadFrame);
  EXPECT_TRUE(c.ExpectEof());
  AssertServerAlive("after-huge-length", 3);
}

TEST_F(NetServerFixture, UnknownOpcodeIsContained) {
  RawConn c;
  ASSERT_TRUE(c.Connect(server_.port()));
  std::vector<uint8_t> frame;
  PutU32(&frame, 9);  // id + opcode only
  PutU64(&frame, 555);
  frame.push_back(0x63);  // no such opcode
  ASSERT_TRUE(c.WriteAll(frame));
  std::vector<uint8_t> body;
  ASSERT_TRUE(c.ReadFrame(&body));
  Reply reply;
  std::string err;
  ASSERT_TRUE(ParseReply(body.data(), body.size(), 0, &reply, &err)) << err;
  EXPECT_EQ(reply.id, 555u);  // echoed even on error
  EXPECT_EQ(reply.status, kBadRequest);
  // Connection SURVIVES a contained error: a valid request on the same
  // socket still works.
  std::vector<uint8_t> put;
  EncodePut(&put, 556, K("survivor"), 7);
  ASSERT_TRUE(c.WriteAll(put));
  ASSERT_TRUE(c.ReadFrame(&body));
  ASSERT_TRUE(ParseReply(body.data(), body.size(), kOpPut, &reply, &err));
  EXPECT_EQ(reply.id, 556u);
  EXPECT_TRUE(reply.ok());
  EXPECT_GE(server_.StatsSnapshot().bad_requests, 1u);
}

TEST_F(NetServerFixture, OversizedKeyIsContained) {
  RawConn c;
  ASSERT_TRUE(c.Connect(server_.port()));
  // Hand-build a GET whose klen exceeds kMaxKeyLen but whose frame is
  // internally consistent (the encoders refuse to build this).
  std::vector<uint8_t> frame;
  const uint16_t klen = kMaxKeyLen + 20;
  PutU32(&frame, static_cast<uint32_t>(9 + 2 + klen));
  PutU64(&frame, 777);
  frame.push_back(kOpGet);
  PutU16(&frame, klen);
  frame.insert(frame.end(), klen, 'K');
  ASSERT_TRUE(c.WriteAll(frame));
  std::vector<uint8_t> body;
  ASSERT_TRUE(c.ReadFrame(&body));
  Reply reply;
  std::string err;
  ASSERT_TRUE(ParseReply(body.data(), body.size(), 0, &reply, &err)) << err;
  EXPECT_EQ(reply.id, 777u);
  EXPECT_EQ(reply.status, kKeyTooLong);
  EXPECT_GE(server_.StatsSnapshot().keys_too_long, 1u);
  // Still contained: the connection keeps working.
  std::vector<uint8_t> get;
  EncodeGet(&get, 778, K("absent"));
  ASSERT_TRUE(c.WriteAll(get));
  ASSERT_TRUE(c.ReadFrame(&body));
  ASSERT_TRUE(ParseReply(body.data(), body.size(), kOpGet, &reply, &err));
  EXPECT_EQ(reply.status, kNotFound);
}

// A key whose ESCAPED form exceeds the index limit (raw length is legal but
// it is all NUL bytes, which double under the escape) must be rejected
// per-key, not crash the trie.
TEST_F(NetServerFixture, NulHeavyKeyOverEscapedLimitIsContained) {
  std::vector<uint8_t> nuls(kMaxKeyLen, 0);  // escapes to 2*254+2 > 256
  ASSERT_FALSE(KeyFitsIndex(KeyRef(nuls.data(), nuls.size())));
  KvClient c;
  std::string err;
  ASSERT_TRUE(c.Connect("127.0.0.1", server_.port(), &err)) << err;
  Reply reply;
  ASSERT_TRUE(c.Put(KeyRef(nuls.data(), nuls.size()), 1, &reply, &err));
  EXPECT_EQ(reply.status, kKeyTooLong);
  // DELETE of such a key: kNotFound (it cannot be present).
  ASSERT_TRUE(c.Delete(KeyRef(nuls.data(), nuls.size()), &reply, &err));
  EXPECT_EQ(reply.status, kNotFound);
  // Short NUL-y keys are fine and round-trip exactly.
  std::vector<uint8_t> shorty = {0, 1, 0, 0, 2};
  ASSERT_TRUE(c.Put(KeyRef(shorty.data(), shorty.size()), 77, &reply, &err));
  EXPECT_TRUE(reply.ok());
  ASSERT_TRUE(c.Scan(KeyRef(), 10, &reply, &err));
  ASSERT_TRUE(reply.ok());
  bool seen = false;
  for (const ScanEntry& e : reply.scan) {
    if (e.key == std::string(shorty.begin(), shorty.end())) {
      seen = true;
      EXPECT_EQ(e.value, 77u);
    }
  }
  EXPECT_TRUE(seen) << "NUL-bearing key lost its original bytes in SCAN";
}

// --- partial I/O torture -----------------------------------------------------

TEST_F(NetServerFixture, OneByteWritesAndReads) {
  RawConn c;
  ASSERT_TRUE(c.Connect(server_.port()));
  // Each phase is written ONE BYTE per write(2) call and its reply read ONE
  // BYTE per read(2) call.  Phases are awaited so a deferred GET never
  // shares a batch window with a write to the same key (the batch drain
  // answers GETs with end-of-iteration state, by design).
  auto roundtrip = [&](const std::vector<uint8_t>& stream, uint8_t op,
                       Reply* reply) {
    ASSERT_TRUE(c.WriteByteByByte(stream));
    std::vector<uint8_t> body;
    ASSERT_TRUE(c.ReadFrame(&body, /*chunk=*/1));
    ASSERT_GE(body.size(), kMinBody);
    std::string err;
    ASSERT_TRUE(ParseReply(body.data(), body.size(), op, reply, &err)) << err;
  };
  std::vector<uint8_t> stream;
  Reply reply;
  EncodePut(&stream, 1, K("dribble"), 1001);
  roundtrip(stream, kOpPut, &reply);
  EXPECT_TRUE(reply.ok());
  EXPECT_TRUE(reply.created);
  stream.clear();
  EncodeGet(&stream, 2, K("dribble"));
  roundtrip(stream, kOpGet, &reply);
  EXPECT_EQ(reply.status, kOk);
  EXPECT_EQ(reply.value, 1001u);
  stream.clear();
  EncodeScan(&stream, 3, K("dribble"), 5);
  roundtrip(stream, kOpScan, &reply);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply.scan.size(), 1u);
  EXPECT_EQ(reply.scan[0].key, "dribble");
  EXPECT_EQ(reply.scan[0].value, 1001u);
  stream.clear();
  EncodeDelete(&stream, 4, K("dribble"));
  roundtrip(stream, kOpDelete, &reply);
  EXPECT_EQ(reply.status, kOk);  // removed
  stream.clear();
  EncodeGet(&stream, 5, K("dribble"));
  roundtrip(stream, kOpGet, &reply);
  EXPECT_EQ(reply.status, kNotFound);
}

TEST_F(NetServerFixture, RandomFragmentationTorture) {
  std::mt19937_64 rng(2026);
  RawConn c;
  ASSERT_TRUE(c.Connect(server_.port()));
  constexpr int kOps = 200;
  std::vector<uint8_t> stream;
  for (int i = 0; i < kOps; ++i) {
    std::string key = "frag-" + std::to_string(i % 37);
    if (i % 3 == 0) {
      EncodePut(&stream, static_cast<uint64_t>(i) + 1, KeyRef(key),
                static_cast<uint64_t>(i));
    } else {
      EncodeGet(&stream, static_cast<uint64_t>(i) + 1, KeyRef(key));
    }
  }
  // Write in random 1..7 byte chunks.
  size_t off = 0;
  while (off < stream.size()) {
    size_t n = std::min<size_t>(1 + rng() % 7, stream.size() - off);
    ASSERT_TRUE(c.WriteAll(stream.data() + off, n));
    off += n;
  }
  int got = 0;
  while (got < kOps) {
    std::vector<uint8_t> body;
    ASSERT_TRUE(c.ReadFrame(&body));
    ++got;
  }
  ServerStats s = server_.StatsSnapshot();
  EXPECT_GE(s.frames_in, static_cast<uint64_t>(kOps));
  EXPECT_EQ(s.protocol_errors, 0u);
}

// --- mid-request disconnect / leak hygiene -----------------------------------

TEST_F(NetServerFixture, MidRequestDisconnectLeaksNothing) {
  uint64_t before = server_.StatsSnapshot().connections_accepted;
  constexpr int kConns = 32;
  for (int i = 0; i < kConns; ++i) {
    RawConn c;
    ASSERT_TRUE(c.Connect(server_.port()));
    // A valid header promising more bytes than we will ever send.
    std::vector<uint8_t> half;
    PutU32(&half, 100);
    PutU64(&half, static_cast<uint64_t>(i));
    half.push_back(kOpPut);
    ASSERT_TRUE(c.WriteAll(half));
    // Destructor disconnects with the request half-delivered.
  }
  ASSERT_TRUE(AwaitAllClosed(before + kConns));
  ServerStats s = server_.StatsSnapshot();
  EXPECT_EQ(s.connections_open(), 0u);
  // Nothing half-parsed leaked into the index.
  EXPECT_EQ(server_.live_keys(), 0u);
  AssertServerAlive("after-disconnect-storm", 4);
}

// Disconnect while replies are still owed (queued GETs whose connection
// dies before the batch drain answers them).
TEST_F(NetServerFixture, DisconnectWithOwedRepliesLeaksNothing) {
  KvClient seed;
  std::string err;
  ASSERT_TRUE(seed.Connect("127.0.0.1", server_.port(), &err)) << err;
  Reply reply;
  for (int i = 0; i < 64; ++i) {
    std::string key = "owed-" + std::to_string(i);
    ASSERT_TRUE(seed.Put(KeyRef(key), static_cast<uint64_t>(i), &reply, &err));
  }
  uint64_t before = server_.StatsSnapshot().connections_accepted;
  for (int round = 0; round < 8; ++round) {
    RawConn c;
    ASSERT_TRUE(c.Connect(server_.port()));
    std::vector<uint8_t> burst;
    for (int i = 0; i < 64; ++i) {
      std::string key = "owed-" + std::to_string(i);
      EncodeGet(&burst, static_cast<uint64_t>(i) + 1, KeyRef(key));
    }
    ASSERT_TRUE(c.WriteAll(burst));
    // Close immediately: many GETs are now in flight toward a dead socket.
  }
  seed.Close();  // connections_open() must reach exactly zero
  ASSERT_TRUE(AwaitAllClosed(before + 8));
  EXPECT_EQ(server_.StatsSnapshot().connections_open(), 0u);
  AssertServerAlive("after-owed-replies", 5);
}

}  // namespace
}  // namespace net
}  // namespace hot
