// Differential and property tests for the binary Patricia trie, which later
// serves as the structural oracle for HOT.

#include "patricia/patricia.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"

namespace hot {
namespace {

using U64Patricia = PatriciaTrie<U64KeyExtractor>;
using StringPatricia = PatriciaTrie<StringTableExtractor>;

KeyBuffer U64Key(uint64_t v) { return KeyBuffer::FromU64(v); }

TEST(Patricia, EmptyTrie) {
  U64Patricia trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.Lookup(U64Key(1).ref()).has_value());
  EXPECT_FALSE(trie.Remove(U64Key(1).ref()));
  EXPECT_EQ(trie.ScanFrom(U64Key(0).ref(), [](uint64_t) { return true; }), 0u);
}

TEST(Patricia, SingleAndDuplicate) {
  U64Patricia trie;
  EXPECT_TRUE(trie.Insert(42));
  EXPECT_FALSE(trie.Insert(42));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.Lookup(U64Key(42).ref()).value(), 42u);
  EXPECT_FALSE(trie.Lookup(U64Key(43).ref()).has_value());
}

TEST(Patricia, DifferentialAgainstStdSetU64) {
  U64Patricia trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(21);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = rng.NextBounded(8000);  // collisions guaranteed
    int op = static_cast<int>(rng.NextBounded(3));
    if (op == 0) {
      EXPECT_EQ(trie.Insert(v), oracle.insert(v).second);
    } else if (op == 1) {
      EXPECT_EQ(trie.Lookup(U64Key(v).ref()).has_value(), oracle.count(v) > 0);
    } else {
      EXPECT_EQ(trie.Remove(U64Key(v).ref()), oracle.erase(v) > 0);
    }
    EXPECT_EQ(trie.size(), oracle.size());
  }
}

TEST(Patricia, ScanMatchesSortedOrder) {
  U64Patricia trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(31);
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = rng.Next() >> 1;
    trie.Insert(v);
    oracle.insert(v);
  }
  for (int probe = 0; probe < 100; ++probe) {
    uint64_t start = rng.Next() >> 1;
    std::vector<uint64_t> got;
    trie.ScanFrom(U64Key(start).ref(), [&](uint64_t v) {
      got.push_back(v);
      return got.size() < 50;
    });
    std::vector<uint64_t> want;
    for (auto it = oracle.lower_bound(start); it != oracle.end() && want.size() < 50;
         ++it) {
      want.push_back(*it);
    }
    EXPECT_EQ(got, want) << "start=" << start;
  }
}

TEST(Patricia, StringKeysWithSharedPrefixes) {
  std::vector<std::string> table = {
      "http://www.example.com/a", "http://www.example.com/b",
      "http://www.example.com/aa", "http://www.example.org/",
      "ftp://mirror",              "http://www.example.com/a/b/c",
      "a",                         "ab",
      "abc",                       "b"};
  StringPatricia trie((StringTableExtractor(&table)));
  for (size_t i = 0; i < table.size(); ++i) EXPECT_TRUE(trie.Insert(i));
  EXPECT_EQ(trie.size(), table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    auto got = trie.Lookup(TerminatedView(table[i]));
    ASSERT_TRUE(got.has_value()) << table[i];
    EXPECT_EQ(*got, i);
  }
  EXPECT_FALSE(trie.Lookup(TerminatedView(std::string("http://"))).has_value());
  // Scan from "a" returns everything >= "a" in lexicographic order.
  std::vector<std::string> got;
  std::string start("a");
  trie.ScanFrom(TerminatedView(start), [&](uint64_t v) {
    got.push_back(table[v]);
    return true;
  });
  std::vector<std::string> want = table;
  std::sort(want.begin(), want.end());
  want.erase(want.begin(), std::lower_bound(want.begin(), want.end(), "a"));
  EXPECT_EQ(got, want);
}

TEST(Patricia, LeafDepthVisitsEveryValueOnce) {
  U64Patricia trie;
  for (uint64_t v = 0; v < 1000; ++v) trie.Insert(v * 7919);
  size_t leaves = 0;
  size_t max_depth = 0;
  trie.ForEachLeaf([&](size_t depth, uint64_t) {
    ++leaves;
    max_depth = std::max(max_depth, depth);
  });
  EXPECT_EQ(leaves, 1000u);
  // A Patricia trie over n keys has depth >= log2(n).
  EXPECT_GE(max_depth, 10u);
}

TEST(Patricia, MemoryAccounting) {
  MemoryCounter counter;
  {
    U64Patricia trie{U64KeyExtractor(), &counter};
    for (uint64_t v = 0; v < 100; ++v) trie.Insert(v);
    // n-1 inner nodes, each counted.
    EXPECT_EQ(counter.live_bytes(), 99 * sizeof(uint32_t) * 0 + 99 * 24u);
    for (uint64_t v = 0; v < 100; ++v) trie.Remove(U64Key(v).ref());
    EXPECT_EQ(counter.live_bytes(), 0u);
  }
}

TEST(Patricia, InsertionOrderIndependence) {
  // Same key set, different insertion orders: identical depth profile
  // (tries are history-independent).
  SplitMix64 rng(77);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.Next() >> 1);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  auto depth_profile = [](const std::vector<uint64_t>& ks) {
    U64Patricia trie;
    for (uint64_t k : ks) trie.Insert(k);
    std::vector<std::pair<size_t, uint64_t>> profile;
    trie.ForEachLeaf([&](size_t d, uint64_t v) { profile.push_back({d, v}); });
    return profile;
  };

  auto sorted_profile = depth_profile(keys);
  std::vector<uint64_t> shuffled = keys;
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.NextBounded(i)]);
  }
  EXPECT_EQ(depth_profile(shuffled), sorted_profile);
}

}  // namespace
}  // namespace hot
