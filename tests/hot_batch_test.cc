// LookupBatch / LowerBoundBatch equivalence: the interleaved AMAC descent
// (hot/batch_lookup.h) must be bit-identical to the scalar operations for
// every batch width, batch size, trie shape (empty / tid-only root / deep),
// and key type — including misses.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/rowex.h"
#include "hot/trie.h"

namespace hot {
namespace {

using U64Hot = HotTrie<U64KeyExtractor>;

constexpr unsigned kWidths[] = {1, 3, 8, 16, 32};

// Probe keys: half present, half random (mostly misses); returns the raw
// bytes + views.
struct U64Probes {
  std::vector<uint8_t> bytes;
  std::vector<KeyRef> keys;

  U64Probes(const std::vector<uint64_t>& present, size_t n, uint64_t seed) {
    SplitMix64 rng(seed);
    bytes.resize(n * 8);
    keys.resize(n);
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = (i % 2 == 0 && !present.empty())
                       ? present[rng.NextBounded(present.size())]
                       : rng.Next() >> 1;
      EncodeU64(v, &bytes[i * 8]);
      keys[i] = KeyRef(&bytes[i * 8], 8);
    }
  }
};

template <typename Trie>
void ExpectBatchMatchesScalar(const Trie& trie,
                              const std::vector<KeyRef>& keys) {
  std::vector<std::optional<uint64_t>> expected(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) expected[i] = trie.Lookup(keys[i]);
  for (unsigned width : kWidths) {
    std::vector<std::optional<uint64_t>> got(keys.size());
    trie.LookupBatch(keys, got, width);
    ASSERT_EQ(got, expected) << "width=" << width << " n=" << keys.size();
  }
}

TEST(HotBatchTest, MillionRandomKeysWithMisses) {
  U64Hot trie;
  std::vector<uint64_t> present;
  SplitMix64 rng(1);
  while (present.size() < 500'000) {
    uint64_t v = rng.Next() >> 1;
    if (trie.Insert(v)) present.push_back(v);
  }
  U64Probes probes(present, 1'000'000, 2);
  // Scalar oracle once; all widths against it (the helper recomputes the
  // oracle per call, too expensive at this n — inline the loop instead).
  std::vector<std::optional<uint64_t>> expected(probes.keys.size());
  size_t hits = 0;
  for (size_t i = 0; i < probes.keys.size(); ++i) {
    expected[i] = trie.Lookup(probes.keys[i]);
    hits += expected[i].has_value();
  }
  ASSERT_GT(hits, probes.keys.size() / 3);           // real hits
  ASSERT_LT(hits, probes.keys.size());               // real misses
  for (unsigned width : kWidths) {
    std::vector<std::optional<uint64_t>> got(probes.keys.size());
    trie.LookupBatch(probes.keys, got, width);
    ASSERT_EQ(got, expected) << "width=" << width;
  }
}

TEST(HotBatchTest, SizesAroundWidthBoundaries) {
  U64Hot trie;
  std::vector<uint64_t> present;
  SplitMix64 rng(3);
  while (present.size() < 10'000) {
    uint64_t v = rng.Next() >> 1;
    if (trie.Insert(v)) present.push_back(v);
  }
  // n < width, n == width, n not a multiple of width, n just over an
  // inline-buffer-ish boundary.
  for (size_t n : {1u, 2u, 5u, 8u, 13u, 16u, 31u, 32u, 33u, 100u, 257u}) {
    U64Probes probes(present, n, 1000 + n);
    ExpectBatchMatchesScalar(trie, probes.keys);
  }
}

TEST(HotBatchTest, EmptyBatchAndEmptyTrie) {
  U64Hot trie;
  // Empty batch on empty trie.
  trie.LookupBatch({}, {});
  // Non-empty batch on empty trie: all misses.
  U64Probes probes({}, 64, 4);
  ExpectBatchMatchesScalar(trie, probes.keys);
  // Empty batch on non-empty trie.
  trie.Insert(7);
  trie.LookupBatch({}, {});
  ExpectBatchMatchesScalar(trie, probes.keys);
}

TEST(HotBatchTest, TidOnlyRoot) {
  U64Hot trie;
  trie.Insert(12345);
  U64Probes probes({12345}, 33, 5);
  ExpectBatchMatchesScalar(trie, probes.keys);
}

// LookupBatchIndexed: only the positions named by `ids` are looked up and
// written; everything else in `out` is untouched.  Exercised over both
// tries, a sparse non-contiguous id subset, and n > the 256-entry inline
// terminal buffer (the heap-scratch path).
template <typename Trie>
void ExpectIndexedMatchesScalar(const Trie& trie,
                                const std::vector<KeyRef>& keys,
                                const std::vector<uint32_t>& ids) {
  std::vector<std::optional<uint64_t>> out(keys.size(),
                                           std::optional<uint64_t>(424242));
  trie.LookupBatchIndexed(keys, ids, out);
  std::vector<bool> named(keys.size(), false);
  for (uint32_t id : ids) named[id] = true;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (named[i]) {
      ASSERT_EQ(out[i], trie.Lookup(keys[i])) << i;
    } else {
      ASSERT_EQ(out[i], std::optional<uint64_t>(424242)) << i;
    }
  }
}

template <typename Trie>
void RunIndexedSubsetCase() {
  Trie trie;
  std::vector<uint64_t> present;
  SplitMix64 rng(17);
  while (present.size() < 20'000) {
    uint64_t v = rng.Next() >> 1;
    if (trie.Insert(v)) present.push_back(v);
  }
  U64Probes probes(present, 600, 18);  // > inline terminal buffer
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < probes.keys.size(); i += 3) ids.push_back(i);
  ids.push_back(1);  // out-of-order and overlapping ids are fine
  ExpectIndexedMatchesScalar(trie, probes.keys, ids);
  // Empty subset: nothing written.
  ExpectIndexedMatchesScalar(trie, probes.keys, {});
}

TEST(HotBatchTest, IndexedSubsetMatchesScalar) {
  RunIndexedSubsetCase<U64Hot>();
}

TEST(HotBatchTest, RowexIndexedSubsetMatchesScalar) {
  RunIndexedSubsetCase<RowexHotTrie<U64KeyExtractor>>();
}

TEST(HotBatchTest, IndexedTidOnlyRoot) {
  U64Hot trie;
  trie.Insert(777);
  U64Probes probes({777}, 8, 19);
  ExpectIndexedMatchesScalar(trie, probes.keys, {0, 3, 7});
}

TEST(HotBatchTest, DefaultAndZeroWidth) {
  U64Hot trie;
  std::vector<uint64_t> present;
  SplitMix64 rng(6);
  while (present.size() < 5'000) {
    uint64_t v = rng.Next() >> 1;
    if (trie.Insert(v)) present.push_back(v);
  }
  U64Probes probes(present, 999, 7);
  std::vector<std::optional<uint64_t>> expected(probes.keys.size());
  for (size_t i = 0; i < probes.keys.size(); ++i) {
    expected[i] = trie.Lookup(probes.keys[i]);
  }
  std::vector<std::optional<uint64_t>> got(probes.keys.size());
  trie.LookupBatch(probes.keys, got);  // default width
  EXPECT_EQ(got, expected);
  trie.LookupBatch(probes.keys, got, 0);  // 0 falls back to the default
  EXPECT_EQ(got, expected);
}

TEST(HotBatchTest, StringKeys) {
  std::vector<std::string> table;
  SplitMix64 rng(8);
  std::set<std::string> seen;
  while (table.size() < 20'000) {
    std::string s = "user" + std::to_string(rng.NextBounded(1u << 20)) +
                    "@example" + std::to_string(rng.NextBounded(97)) + ".com";
    if (seen.insert(s).second) table.push_back(s);
  }
  HotTrie<StringTableExtractor> trie{StringTableExtractor(&table)};
  // Index only the first half; probes over the whole table include misses.
  for (size_t i = 0; i < table.size() / 2; ++i) trie.Insert(i);
  std::vector<KeyRef> keys;
  for (size_t p = 0; p < 5'000; ++p) {
    keys.push_back(TerminatedView(table[rng.NextBounded(table.size())]));
  }
  ExpectBatchMatchesScalar(trie, keys);
}

TEST(HotBatchTest, LowerBoundBatchMatchesScalar) {
  U64Hot trie;
  std::set<uint64_t> oracle;
  SplitMix64 rng(9);
  while (oracle.size() < 50'000) {
    uint64_t v = rng.NextBounded(1u << 26);
    if (oracle.insert(v).second) trie.Insert(v);
  }
  constexpr size_t kProbes = 4'096;
  std::vector<uint8_t> bytes(kProbes * 8);
  std::vector<KeyRef> keys(kProbes);
  for (size_t i = 0; i < kProbes; ++i) {
    // Mix of member keys, near misses, and keys beyond both ends.
    uint64_t v;
    switch (i % 4) {
      case 0: {
        auto oit = oracle.lower_bound(rng.NextBounded(1u << 26));
        v = oit != oracle.end() ? *oit : *oracle.begin();
        break;
      }
      case 1: v = rng.NextBounded(1u << 26); break;
      case 2: v = rng.NextBounded(64); break;
      default: v = (1u << 26) + rng.NextBounded(1u << 20); break;
    }
    EncodeU64(v, &bytes[i * 8]);
    keys[i] = KeyRef(&bytes[i * 8], 8);
  }
  for (unsigned width : kWidths) {
    std::vector<U64Hot::Iterator> its(kProbes);
    trie.LowerBoundBatch(keys, its.data(), width);
    for (size_t i = 0; i < kProbes; ++i) {
      auto scalar = trie.LowerBound(keys[i]);
      ASSERT_EQ(its[i].valid(), scalar.valid()) << "width=" << width
                                                << " i=" << i;
      if (scalar.valid()) {
        ASSERT_EQ(its[i].value(), scalar.value()) << "width=" << width
                                                  << " i=" << i;
        // The batched iterator must be fully usable, not just positioned:
        // advancing both stays in lockstep.
        auto batched = its[i];
        batched.Next();
        scalar.Next();
        ASSERT_EQ(batched.valid(), scalar.valid());
        if (scalar.valid()) ASSERT_EQ(batched.value(), scalar.value());
      }
    }
  }
}

TEST(HotBatchTest, LowerBoundBatchEmptyAndTidRoot) {
  U64Hot trie;
  std::vector<uint8_t> bytes(8);
  EncodeU64(42, bytes.data());
  std::vector<KeyRef> keys = {KeyRef(bytes.data(), 8)};
  std::vector<U64Hot::Iterator> its(1);
  trie.LowerBoundBatch(keys, its.data());
  EXPECT_FALSE(its[0].valid());
  trie.Insert(42);
  trie.LowerBoundBatch(keys, its.data());
  ASSERT_TRUE(its[0].valid());
  EXPECT_EQ(its[0].value(), 42u);
}

TEST(HotBatchTest, RowexBatchMatchesScalar) {
  RowexHotTrie<U64KeyExtractor> trie;
  std::vector<uint64_t> present;
  SplitMix64 rng(10);
  while (present.size() < 100'000) {
    uint64_t v = rng.Next() >> 1;
    if (trie.Insert(v)) present.push_back(v);
  }
  U64Probes probes(present, 100'000, 11);
  ExpectBatchMatchesScalar(trie, probes.keys);
}

TEST(HotBatchTest, RowexEmptyAndTidRoot) {
  RowexHotTrie<U64KeyExtractor> trie;
  U64Probes probes({}, 40, 12);
  ExpectBatchMatchesScalar(trie, probes.keys);
  trie.Insert(99);
  U64Probes probes2({99}, 40, 13);
  ExpectBatchMatchesScalar(trie, probes2.keys);
}

}  // namespace
}  // namespace hot
