// Property-based parameter sweeps (TEST_P): for every benchmark data-set
// kind and several sizes, the HOT trie must
//   * satisfy every structural invariant (Validate),
//   * agree with the binary Patricia trie — its defining structure (§3.1
//     says HOT partitions exactly this trie) — on membership and order,
//   * keep all invariants through heavy deletion churn,
//   * stay within the paper's compactness envelope,
// and the node-layout census must only contain legal layouts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/stats.h"
#include "hot/trie.h"
#include "patricia/patricia.h"
#include "ycsb/datasets.h"

namespace hot {
namespace {

using ycsb::DataSet;
using ycsb::DataSetKind;
using ycsb::GenerateDataSet;

class HotSweepTest
    : public ::testing::TestWithParam<std::tuple<DataSetKind, size_t>> {
 protected:
  DataSet ds_ = GenerateDataSet(std::get<0>(GetParam()),
                                std::get<1>(GetParam()), 1234);

  KeyRef KeyOf(size_t i, KeyScratch& scratch) const {
    if (ds_.IsString()) return TerminatedView(ds_.strings[i]);
    U64KeyExtractor ex;
    return ex(ds_.ints[i], scratch);
  }
};

TEST_P(HotSweepTest, InvariantsAndPatriciaAgreement) {
  if (ds_.IsString()) {
    HotTrie<StringTableExtractor> hot{StringTableExtractor(&ds_.strings)};
    PatriciaTrie<StringTableExtractor> bin{StringTableExtractor(&ds_.strings)};
    for (size_t i = 0; i < ds_.size(); ++i) {
      ASSERT_TRUE(hot.Insert(i));
      ASSERT_TRUE(bin.Insert(i));
    }
    std::string err;
    ASSERT_TRUE(hot.Validate(&err)) << err;
    // Same members, same order.
    std::vector<uint64_t> hot_order, bin_order;
    for (auto it = hot.Begin(); it.valid(); it.Next()) {
      hot_order.push_back(it.value());
    }
    bin.ForEachLeaf([&](size_t, uint64_t v) { bin_order.push_back(v); });
    ASSERT_EQ(hot_order, bin_order);
    // Random scans agree.
    SplitMix64 rng(9);
    for (int probe = 0; probe < 50; ++probe) {
      const std::string& s = ds_.strings[rng.NextBounded(ds_.size())];
      std::string start = s.substr(0, 1 + rng.NextBounded(s.size()));
      std::vector<uint64_t> a, b;
      hot.ScanFrom(KeyRef(start), 30, [&](uint64_t v) { a.push_back(v); });
      bin.ScanFrom(KeyRef(start), [&](uint64_t v) {
        b.push_back(v);
        return b.size() < 30;
      });
      ASSERT_EQ(a, b) << "scan from '" << start << "'";
    }
  } else {
    HotTrie<U64KeyExtractor> hot;
    PatriciaTrie<U64KeyExtractor> bin;
    for (uint64_t v : ds_.ints) {
      ASSERT_TRUE(hot.Insert(v));
      ASSERT_TRUE(bin.Insert(v));
    }
    std::string err;
    ASSERT_TRUE(hot.Validate(&err)) << err;
    std::vector<uint64_t> hot_order, bin_order;
    for (auto it = hot.Begin(); it.valid(); it.Next()) {
      hot_order.push_back(it.value());
    }
    bin.ForEachLeaf([&](size_t, uint64_t v) { bin_order.push_back(v); });
    ASSERT_EQ(hot_order, bin_order);
    std::vector<uint64_t> sorted = ds_.ints;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(hot_order, sorted);
  }
}

TEST_P(HotSweepTest, DeletionChurnKeepsInvariants) {
  SplitMix64 rng(4321);
  if (ds_.IsString()) {
    HotTrie<StringTableExtractor> hot{StringTableExtractor(&ds_.strings)};
    for (size_t i = 0; i < ds_.size(); ++i) ASSERT_TRUE(hot.Insert(i));
    std::vector<uint32_t> order(ds_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    // Remove two thirds, validating periodically.
    size_t removed = 0;
    for (uint32_t i : order) {
      if (removed >= ds_.size() * 2 / 3) break;
      ASSERT_TRUE(hot.Remove(TerminatedView(ds_.strings[i])));
      ++removed;
      if (removed % 1000 == 0) {
        std::string err;
        ASSERT_TRUE(hot.Validate(&err)) << err;
      }
    }
    std::string err;
    ASSERT_TRUE(hot.Validate(&err)) << err;
    // Survivors still resolve.
    for (size_t j = removed; j < order.size(); ++j) {
      ASSERT_TRUE(
          hot.Lookup(TerminatedView(ds_.strings[order[j]])).has_value());
    }
  } else {
    HotTrie<U64KeyExtractor> hot;
    for (uint64_t v : ds_.ints) ASSERT_TRUE(hot.Insert(v));
    std::vector<uint64_t> order = ds_.ints;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.NextBounded(i)]);
    }
    size_t removed = 0;
    for (uint64_t v : order) {
      if (removed >= ds_.size() * 2 / 3) break;
      ASSERT_TRUE(hot.Remove(U64Key(v).ref()));
      ++removed;
      if (removed % 1000 == 0) {
        std::string err;
        ASSERT_TRUE(hot.Validate(&err)) << err;
      }
    }
    std::string err;
    ASSERT_TRUE(hot.Validate(&err)) << err;
    for (size_t j = removed; j < order.size(); ++j) {
      ASSERT_TRUE(hot.Lookup(U64Key(order[j]).ref()).has_value());
    }
  }
}

TEST_P(HotSweepTest, CompactnessEnvelopeAndLegalLayouts) {
  MemoryCounter counter;
  NodeCensus census;
  double bytes_per_key = 0;
  // (live_bytes must be read while the trie is alive.)
  if (ds_.IsString()) {
    HotTrie<StringTableExtractor> hot{StringTableExtractor(&ds_.strings),
                                      &counter};
    for (size_t i = 0; i < ds_.size(); ++i) hot.Insert(i);
    census = ComputeNodeCensus(hot);
    bytes_per_key = static_cast<double>(counter.live_bytes()) / ds_.size();
  } else {
    HotTrie<U64KeyExtractor> hot{U64KeyExtractor(), &counter};
    for (uint64_t v : ds_.ints) hot.Insert(v);
    census = ComputeNodeCensus(hot);
    bytes_per_key = static_cast<double>(counter.live_bytes()) / ds_.size();
  }
  // §6.3 reports 11.4-14.4 at 50M keys; allow head room at small scale.
  EXPECT_LT(bytes_per_key, 30.0);
  EXPECT_GT(bytes_per_key, 8.0);
  // Layout sanity: every node accounted, fanout sane.
  uint64_t counted = 0;
  for (auto c : census.count_by_type) counted += c;
  EXPECT_EQ(counted, census.nodes);
  EXPECT_GE(census.AverageFanout(), 2.0);
  EXPECT_LE(census.AverageFanout(), 32.0);
}

INSTANTIATE_TEST_SUITE_P(
    DataSetsAndSizes, HotSweepTest,
    ::testing::Combine(::testing::Values(DataSetKind::kUrl,
                                         DataSetKind::kEmail,
                                         DataSetKind::kYago,
                                         DataSetKind::kInteger),
                       ::testing::Values(size_t{1000}, size_t{10000},
                                         size_t{60000})),
    [](const ::testing::TestParamInfo<std::tuple<DataSetKind, size_t>>& info) {
      return std::string(ycsb::DataSetName(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hot
