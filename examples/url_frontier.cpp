// Example: a crawl frontier with URL de-duplication — the long-key workload
// of the paper's evaluation (55-byte URLs, Fig. 8/9).
//
// A crawler must (a) deduplicate discovered URLs, (b) keep them ordered so
// per-host batches can be drained with range scans, and (c) not blow up
// memory while doing so.  HOT is a natural fit: order-preserving, and the
// index is a fraction of the raw URL bytes.
//
// Build & run:  ./build/examples/url_frontier

#include <cstdio>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "hot/stats.h"
#include "hot/trie.h"
#include "ycsb/datasets.h"

using namespace hot;

int main() {
  ycsb::DataSet ds = ycsb::GenerateDataSet(ycsb::DataSetKind::kUrl, 400000, 7);

  // The frontier owns the URL table; the trie maps url -> table slot.
  std::vector<std::string> table;
  table.reserve(ds.strings.size());
  MemoryCounter counter;
  HotTrie<StringTableExtractor> frontier{StringTableExtractor(&table),
                                         &counter};

  // Discovery stream with ~30% duplicates.
  size_t discovered = 0, duplicates = 0;
  for (size_t i = 0; i < ds.strings.size(); ++i) {
    const std::string& url = ds.strings[i % (ds.strings.size() * 7 / 10)];
    table.push_back(url);
    if (frontier.Insert(table.size() - 1)) {
      ++discovered;
    } else {
      table.pop_back();  // duplicate: drop the copy
      ++duplicates;
    }
  }
  printf("frontier: %zu unique urls, %zu duplicates rejected\n", discovered,
         duplicates);

  size_t raw_bytes = 0;
  for (const auto& u : table) raw_bytes += u.size();
  printf("raw urls: %.1f MB, index: %.1f MB, table+index: %.1f MB\n",
         static_cast<double>(raw_bytes) / 1e6,
         static_cast<double>(counter.live_bytes()) / 1e6,
         static_cast<double>(raw_bytes + counter.live_bytes()) / 1e6);

  DepthStats depth = ComputeDepthStats(frontier);
  printf("mean leaf depth %.2f (55-byte keys!), max %u\n", depth.Mean(),
         depth.max);

  // Drain a per-prefix batch: all https URLs, 5 at a time.
  printf("next https batch:\n");
  std::string cursor = "https://";
  for (int batch = 0; batch < 2; ++batch) {
    std::string last;
    size_t n = frontier.ScanFrom(
        KeyRef(reinterpret_cast<const uint8_t*>(cursor.data()), cursor.size()),
        5, [&](uint64_t tid) {
          printf("  crawl %s\n", table[tid].c_str());
          last = table[tid];
        });
    if (n == 0) break;
    // Advance the cursor past the last drained URL.
    cursor = last + '\x01';
    printf("  -- batch end --\n");
  }

  // Crawled URLs leave the frontier.
  size_t removed = 0;
  frontier.ScanFrom(TerminatedView(std::string("https://")), 1000,
                    [&](uint64_t) { ++removed; });
  printf("(would remove %zu crawled https urls; frontier keeps the rest)\n",
         removed);
  return 0;
}
