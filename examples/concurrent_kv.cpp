// Example: a concurrent ordered key-value store on the ROWEX-synchronized
// HOT trie (paper §5) — writers lock only the nodes they modify, readers
// are wait-free and never observe an inconsistent tree.
//
// Simulates a session store: writer threads register/expire sessions while
// reader threads authenticate and list sessions by user prefix, all
// concurrently.
//
// Build & run:  ./build/examples/concurrent_kv

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/rowex.h"

using namespace hot;

int main() {
  // Session table: "user:session" -> slot.  The table is pre-sized so slot
  // pointers stay stable while threads run.
  constexpr size_t kUsers = 2000;
  constexpr size_t kSessionsPerUser = 8;
  std::vector<std::string> table;
  table.reserve(kUsers * kSessionsPerUser);
  for (size_t u = 0; u < kUsers; ++u) {
    for (size_t s = 0; s < kSessionsPerUser; ++s) {
      table.push_back("user" + std::to_string(u) + ":session" +
                      std::to_string(s));
    }
  }

  RowexHotTrie<StringTableExtractor> store{StringTableExtractor(&table)};

  constexpr unsigned kWriters = 2;
  constexpr unsigned kReaders = 2;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> auth_checks{0}, registrations{0}, expirations{0};

  // Writers: churn sessions in thread-owned stripes.
  std::vector<std::thread> threads;
  for (unsigned w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      SplitMix64 rng(100 + w);
      for (int i = 0; i < 100000; ++i) {
        size_t slot = (rng.NextBounded(table.size() / kWriters)) * kWriters + w;
        if (slot >= table.size()) continue;
        if (rng.NextBounded(2) == 0) {
          if (store.Insert(slot)) ++registrations;
        } else {
          if (store.Remove(TerminatedView(table[slot]))) ++expirations;
        }
      }
    });
  }
  // Readers: authenticate random sessions and list a user's sessions.
  for (unsigned r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      SplitMix64 rng(200 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        size_t slot = rng.NextBounded(table.size());
        store.Lookup(TerminatedView(table[slot]));
        std::string prefix = "user" + std::to_string(rng.NextBounded(kUsers));
        store.ScanFrom(
            KeyRef(reinterpret_cast<const uint8_t*>(prefix.data()),
                   prefix.size()),
            kSessionsPerUser, [](uint64_t) {});
        ++auth_checks;
      }
    });
  }

  for (unsigned w = 0; w < kWriters; ++w) threads[w].join();
  stop = true;
  for (unsigned r = 0; r < kReaders; ++r) threads[kWriters + r].join();

  printf("registrations: %llu, expirations: %llu, reader operations: %llu\n",
         static_cast<unsigned long long>(registrations),
         static_cast<unsigned long long>(expirations),
         static_cast<unsigned long long>(auth_checks));
  printf("live sessions: %zu\n", store.size());

  // Quiescent sanity check: every live session must authenticate.
  size_t verified = 0;
  store.ForEachLeaf([&](unsigned, uint64_t tid) {
    if (store.Lookup(TerminatedView(table[tid])).has_value()) ++verified;
  });
  printf("verified %zu/%zu live sessions resolve\n", verified, store.size());
  return verified == store.size() ? 0 : 1;
}
