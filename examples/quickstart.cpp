// Quickstart: the HOT public API in five minutes.
//
// A HOT trie maps binary-comparable keys to 63-bit tuple identifiers.  The
// key for a value is derived through a KeyExtractor — exactly like the
// paper's setup, where leaves store tids and the key is re-loadable from
// the tuple (integers embed the key in the tid directly).
//
// Build & run:  ./build/examples/quickstart

#include <cinttypes>
#include <cstdio>

#include "common/extractors.h"
#include "common/rng.h"
#include "hot/stats.h"
#include "hot/trie.h"

using namespace hot;

int main() {
  // --- integer keys -----------------------------------------------------------
  // U64KeyExtractor re-encodes the stored value as a big-endian 8-byte key,
  // so numeric order == key order.
  HotTrie<U64KeyExtractor> index;

  for (uint64_t v : {42ULL, 7ULL, 1000ULL, 99ULL, 500ULL}) {
    index.Insert(v);
  }
  printf("inserted %zu integers\n", index.size());

  // Point lookup: build the probe key with the same encoding.
  if (auto hit = index.Lookup(U64Key(99).ref())) {
    printf("lookup(99) -> %" PRIu64 "\n", *hit);
  }
  if (!index.Lookup(U64Key(98).ref())) {
    printf("lookup(98) -> not found\n");
  }

  // Ordered scan: everything >= 50, at most 3 results.
  printf("scan from 50, limit 3:");
  index.ScanFrom(U64Key(50).ref(), 3, [](uint64_t v) { printf(" %" PRIu64, v); });
  printf("\n");

  // Deletion.
  index.Remove(U64Key(42).ref());
  printf("after remove(42): size=%zu\n", index.size());

  // --- string keys ------------------------------------------------------------
  // For variable-length keys the tid indexes a record table; the extractor
  // returns the key bytes plus a 0x00 terminator (keys must be prefix-free;
  // the terminator guarantees it for NUL-free strings).
  std::vector<std::string> words = {"trie",   "tree",  "treap",
                                    "hash",   "heap",  "hot",
                                    "height", "index", "memory"};
  HotTrie<StringTableExtractor> dict{StringTableExtractor(&words)};
  for (size_t i = 0; i < words.size(); ++i) dict.Insert(i);

  printf("dictionary scan from \"tr\":");
  dict.ScanFrom(TerminatedView(std::string("tr")), 10,
                [&](uint64_t tid) { printf(" %s", words[tid].c_str()); });
  printf("\n");

  // --- introspection ----------------------------------------------------------
  MemoryCounter counter;
  HotTrie<U64KeyExtractor> big{U64KeyExtractor(), &counter};
  SplitMix64 rng(1);
  for (uint64_t v = 0; v < 1000000; ++v) big.Insert(rng.Next() >> 1);
  DepthStats depth = ComputeDepthStats(big);
  NodeCensus census = ComputeNodeCensus(big);
  printf("1M keys: %.1f bytes/key, mean depth %.2f, max depth %u, "
         "avg fanout %.1f\n",
         static_cast<double>(counter.live_bytes()) / 1e6, depth.Mean(),
         depth.max, census.AverageFanout());
  return 0;
}
