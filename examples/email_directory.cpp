// Example: an email directory — the string-intensive workload the paper's
// introduction motivates (§1: "for string data, the size of the index is
// generally significantly smaller than the string data itself").
//
// Builds a user directory keyed by email address, then exercises the
// operations a directory service needs: exact lookups (login), prefix
// scans (autocomplete), range paging, and account deletion — and reports
// the index footprint next to the raw key bytes.
//
// Build & run:  ./build/examples/email_directory

#include <cstdio>
#include <string>
#include <vector>

#include "common/extractors.h"
#include "hot/trie.h"
#include "ycsb/datasets.h"

using namespace hot;

namespace {

// Prefix scan: all addresses starting with `prefix`, up to `limit`.
// A prefix query is a lower-bound scan that stops at the first key not
// extending the prefix.
size_t ForEachWithPrefix(const HotTrie<StringTableExtractor>& index,
                         const std::vector<std::string>& table,
                         const std::string& prefix, size_t limit,
                         const std::function<void(const std::string&)>& fn) {
  size_t produced = 0;
  KeyRef start(reinterpret_cast<const uint8_t*>(prefix.data()), prefix.size());
  index.ScanFrom(start, limit + 1, [&](uint64_t tid) {
    const std::string& s = table[tid];
    if (produced >= limit) return;
    if (s.compare(0, prefix.size(), prefix) != 0) return;
    fn(s);
    ++produced;
  });
  return produced;
}

}  // namespace

int main() {
  // Synthesize a directory of 500k addresses (deterministic).
  ycsb::DataSet ds =
      ycsb::GenerateDataSet(ycsb::DataSetKind::kEmail, 500000, 2026);
  MemoryCounter counter;
  HotTrie<StringTableExtractor> directory{StringTableExtractor(&ds.strings),
                                          &counter};

  for (size_t uid = 0; uid < ds.strings.size(); ++uid) {
    directory.Insert(uid);
  }
  printf("directory: %zu accounts\n", directory.size());
  printf("raw key bytes: %.1f MB, index: %.1f MB (%.0f%% of the raw keys)\n",
         static_cast<double>(ds.RawKeyBytes()) / 1e6,
         static_cast<double>(counter.live_bytes()) / 1e6,
         100.0 * static_cast<double>(counter.live_bytes()) /
             static_cast<double>(ds.RawKeyBytes()));

  // Login: exact lookup.
  const std::string& someone = ds.strings[123456];
  if (auto uid = directory.Lookup(TerminatedView(someone))) {
    printf("login %s -> uid %llu\n", someone.c_str(),
           static_cast<unsigned long long>(*uid));
  }

  // Autocomplete: first 5 addresses starting with "anna.".
  printf("autocomplete 'anna.':\n");
  ForEachWithPrefix(directory, ds.strings, "anna.", 5,
                    [](const std::string& s) { printf("  %s\n", s.c_str()); });

  // Paging: 3 addresses at or after "m".
  printf("page from 'm':\n");
  size_t shown = 0;
  directory.ScanFrom(TerminatedView(std::string("m")), 3, [&](uint64_t tid) {
    printf("  %s\n", ds.strings[tid].c_str());
    ++shown;
  });

  // Account deletion.
  size_t before = directory.size();
  directory.Remove(TerminatedView(someone));
  printf("deleted %s: size %zu -> %zu, lookup now %s\n", someone.c_str(),
         before, directory.size(),
         directory.Lookup(TerminatedView(someone)) ? "found" : "gone");
  return 0;
}
